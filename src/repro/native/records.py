"""Native on-disk record format and its numpy kernels.

The native backend moves *real bytes*: records are fixed-size binary
structs written with ``ndarray.tofile`` and read back with
``numpy.fromfile``.  The layout mirrors the paper's 16-byte element
(:data:`repro.records.element.ELEM_PAPER_16B`): a little-endian 64-bit
key followed by a 64-bit payload.  The payload carries the gensort-style
record index, so a sorted output file can be traced back to the exact
input permutation during validation.

Keys come from :mod:`repro.workloads.gensort` — records are a pure
function of ``(seed, index)``, any sub-range can be generated
independently (each worker process generates its own slice), and the
order-independent checksum of the whole input is known without reading
it back.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..records.element import ELEM_PAPER_16B, KEY_DTYPE
from ..workloads.gensort import record_keys

__all__ = [
    "NATIVE_DTYPE",
    "RECORD_BYTES",
    "make_records",
    "generate_records",
    "sort_records",
    "merge_record_arrays",
    "read_records",
    "record_count",
    "records_from_bytes",
    "bytes_view",
    "keys_of",
    # Variable-length (string) record model
    "VARLEN_HEADER_BYTES",
    "VARLEN_PAYLOAD_BYTES",
    "VarlenBatch",
    "make_varlen_batch",
    "varlen_from_bytes",
    "merge_varlen_batches",
    "string_key_from_u64",
    "url_key_from_u64",
    "logline_key_from_u64",
    "STRING_FAMILIES",
    "resolve_string_family",
    "generate_string_batch",
    "string_checksum",
    "embed_key",
    "unembed_key",
    "lcp_encode_keys",
    "lcp_decode_keys",
    "lcp_encode_batch",
    "lcp_decode_batch",
    "read_varlen_file",
    "write_varlen_file",
    "RecordModel",
    "Fixed16Model",
    "StringModel",
    "MODELS",
    "resolve_model",
]

#: One native record: (key, payload), 16 bytes, little-endian.
NATIVE_DTYPE = np.dtype([("key", "<u8"), ("payload", "<u8")])

#: Bytes per native record (= the paper's 16-byte element).
RECORD_BYTES = NATIVE_DTYPE.itemsize

assert RECORD_BYTES == ELEM_PAPER_16B.elem_bytes


def make_records(keys: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """Assemble a structured record array from key/payload columns."""
    if len(keys) != len(payloads):
        raise ValueError(f"{len(keys)} keys vs {len(payloads)} payloads")
    out = np.empty(len(keys), dtype=NATIVE_DTYPE)
    out["key"] = keys
    out["payload"] = payloads
    return out


def generate_records(
    start: int, count: int, seed: int = 0, skew: bool = False
) -> np.ndarray:
    """Records ``start .. start+count-1`` of the gensort-style input.

    Keys are the deterministic gensort keys (uniform, or the
    duplicate-heavy Daytona-like distribution with ``skew=True``); the
    payload is the global record index.
    """
    keys = record_keys(start, count, seed=seed, skew=skew)
    payloads = np.arange(start, start + count, dtype=np.uint64)
    return make_records(keys, payloads)


def sort_records(records: np.ndarray) -> np.ndarray:
    """Sort records by key, stable in input position (ties keep order)."""
    order = np.argsort(records["key"], kind="stable")
    return records[order]


def merge_record_arrays(parts: List[np.ndarray]) -> np.ndarray:
    """Merge key-sorted record arrays into one key-sorted array.

    Stable across parts in list order, which realizes the package's
    canonical (key, sequence, position) tie-breaking when the caller
    passes parts in sequence order.  Like
    :func:`repro.records.arrays.merge_sorted_arrays` this is implemented
    as concatenate + stable sort (the paper explicitly allows replacing
    batch merging by sorting of batches).
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return np.empty(0, dtype=NATIVE_DTYPE)
    if len(parts) == 1:
        # A read-only view, not the caller's array: downstream code is
        # free to mutate the merge result in place, and on the
        # single-part fast path that used to silently corrupt the
        # caller's buffer.  Mutators now get an explicit ValueError and
        # must copy first.
        view = parts[0].view()
        view.flags.writeable = False
        return view
    out = np.concatenate(parts)
    order = np.argsort(out["key"], kind="stable")
    return out[order]


def read_records(path: str, start: int, count: int) -> np.ndarray:
    """Read ``count`` records from ``path`` beginning at record ``start``."""
    with open(path, "rb") as handle:
        handle.seek(start * RECORD_BYTES)
        return np.fromfile(handle, dtype=NATIVE_DTYPE, count=count)


def record_count(path: str) -> int:
    """Number of whole records stored in ``path``."""
    import os

    size = os.path.getsize(path)
    if size % RECORD_BYTES:
        raise ValueError(f"{path}: {size} bytes is not a whole number of records")
    return size // RECORD_BYTES


def records_from_bytes(buf: bytes) -> np.ndarray:
    """View a raw byte chunk (as sent over a pipe) as a record array."""
    if len(buf) % RECORD_BYTES:
        raise ValueError(f"{len(buf)} bytes is not a whole number of records")
    return np.frombuffer(buf, dtype=NATIVE_DTYPE)


def bytes_view(records: np.ndarray) -> memoryview:
    """Zero-copy byte view of a contiguous record array.

    The inverse of :func:`records_from_bytes`: the hot path hands chunks
    to the interconnect as views of the record arrays they were sliced
    from (``len()`` of the view is the byte length), so a transport with
    buffer support — shm rings, TCP gather-writes — never materializes an
    intermediate ``bytes``.  A non-contiguous input is first compacted
    (the one place the copy is unavoidable).
    """
    if not records.flags["C_CONTIGUOUS"]:
        records = np.ascontiguousarray(records)
    return records.view(np.uint8).data


def keys_of(records: np.ndarray) -> np.ndarray:
    """The key column of a record array (same dtype as the simulator keys)."""
    return records["key"].astype(KEY_DTYPE, copy=False)


# ---------------------------------------------------------------------------
# Variable-length (string) records
#
# Layout of one record, little-endian::
#
#     u32 key_len | key bytes (key_len) | u64 payload
#
# Keys are arbitrary NUL-free byte strings (empty allowed); ordering is
# plain byte-lexicographic, which for NUL-free keys coincides with the
# order of their big-endian zero-padded integer embedding (``embed_key``)
# — that is what lets the existing exact-rank multiway selection kernel,
# which compares integer probe replies, rank strings without change.
# The payload stays a u64 record index so the conformance permutation
# and round-trip checks carry over unchanged.
# ---------------------------------------------------------------------------

#: Bytes of the per-record length prefix (u32 key length).
VARLEN_HEADER_BYTES = 4

#: Bytes of the per-record payload (u64 record index).
VARLEN_PAYLOAD_BYTES = 8

_U64_MASK = (1 << 64) - 1


def _check_key(key: bytes) -> bytes:
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError(f"string keys must be bytes, got {type(key).__name__}")
    if b"\x00" in key:
        raise ValueError("string keys must be NUL-free (ordering embedding)")
    return bytes(key)


class VarlenBatch:
    """A contiguous batch of length-prefixed variable records.

    Backed by one ``uint8`` data array plus an ``int64`` offset array of
    ``n + 1`` record-boundary byte offsets (``offsets[0] == 0``,
    ``offsets[-1] == data.nbytes``) — the varlen analogue of a
    structured record array.  ``bytes_view`` stays zero-copy, and
    ``slice`` is a view of the data (only the small offset vector is
    rebased), so the exchange hot path keeps the no-intermediate-copy
    property of the fixed model.
    """

    __slots__ = ("data", "offsets", "_mv", "_keys")

    def __init__(
        self,
        data: np.ndarray,
        offsets: np.ndarray,
        keys: Optional[List[bytes]] = None,
    ):
        data = np.asarray(data, dtype=np.uint8)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) < 1 or offsets[0] != 0:
            raise ValueError("offsets must be 1-D with offsets[0] == 0")
        if len(offsets) > 1 and bool(np.any(np.diff(offsets) < 0)):
            raise ValueError("offsets must be non-decreasing")
        if int(offsets[-1]) != data.nbytes:
            raise ValueError(
                f"offsets end at {int(offsets[-1])} but data holds "
                f"{data.nbytes} bytes"
            )
        self.data = data
        self.offsets = offsets
        self._mv = memoryview(np.ascontiguousarray(data)).cast("B")
        self._keys = keys

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls, keys: Sequence[bytes], payloads: Iterable[int]
    ) -> "VarlenBatch":
        """Encode parallel key/payload sequences into a batch."""
        chunks: List[bytes] = []
        offsets = np.empty(len(keys) + 1, dtype=np.int64)
        offsets[0] = 0
        total = 0
        checked: List[bytes] = []
        for i, (key, payload) in enumerate(zip(keys, payloads)):
            key = _check_key(key)
            checked.append(key)
            rec = (
                struct.pack("<I", len(key))
                + key
                + struct.pack("<Q", int(payload) & _U64_MASK)
            )
            chunks.append(rec)
            total += len(rec)
            offsets[i + 1] = total
        data = np.frombuffer(b"".join(chunks), dtype=np.uint8)
        return cls(data, offsets, keys=checked)

    @classmethod
    def empty(cls) -> "VarlenBatch":
        return cls(np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64),
                   keys=[])

    @classmethod
    def concat(cls, parts: Sequence["VarlenBatch"]) -> "VarlenBatch":
        """Concatenate batches in list order (no reordering)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        data = np.concatenate([np.ascontiguousarray(p.data) for p in parts])
        sizes = np.concatenate([np.diff(p.offsets) for p in parts])
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        keys = None
        if all(p._keys is not None for p in parts):
            keys = [k for p in parts for k in p._keys]
        return cls(data, offsets, keys=keys)

    @classmethod
    def from_bytes(cls, buf) -> "VarlenBatch":
        """Parse a raw byte chunk by walking the length prefixes."""
        mv = memoryview(buf).cast("B")
        end = len(mv)
        offsets = [0]
        off = 0
        while off < end:
            if off + VARLEN_HEADER_BYTES > end:
                raise ValueError(
                    f"truncated varlen record header at byte {off}/{end}"
                )
            (key_len,) = struct.unpack_from("<I", mv, off)
            nxt = off + VARLEN_HEADER_BYTES + key_len + VARLEN_PAYLOAD_BYTES
            if nxt > end:
                raise ValueError(
                    f"truncated varlen record at byte {off}/{end} "
                    f"(key_len={key_len})"
                )
            off = nxt
            offsets.append(off)
        data = np.frombuffer(mv, dtype=np.uint8)
        return cls(data, np.asarray(offsets, dtype=np.int64))

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def nbytes(self) -> int:
        return int(self.offsets[-1])

    def bytes_view(self) -> memoryview:
        """Zero-copy byte view of the whole batch (wire/disk form)."""
        return self._mv[: self.nbytes]

    def key_at(self, i: int) -> bytes:
        if self._keys is not None:
            return self._keys[i]
        off = int(self.offsets[i])
        (key_len,) = struct.unpack_from("<I", self._mv, off)
        start = off + VARLEN_HEADER_BYTES
        return bytes(self._mv[start : start + key_len])

    def payload_at(self, i: int) -> int:
        off = int(self.offsets[i])
        (key_len,) = struct.unpack_from("<I", self._mv, off)
        return struct.unpack_from(
            "<Q", self._mv, off + VARLEN_HEADER_BYTES + key_len
        )[0]

    def keys(self) -> List[bytes]:
        """All keys, decoded once and cached."""
        if self._keys is None:
            self._keys = [self.key_at(i) for i in range(len(self))]
        return self._keys

    def payloads(self) -> np.ndarray:
        return np.array(
            [self.payload_at(i) for i in range(len(self))], dtype=np.uint64
        )

    def max_key_len(self) -> int:
        return max((len(k) for k in self.keys()), default=0)

    # -- slicing / reordering ---------------------------------------------

    def slice(self, start: int, stop: int) -> "VarlenBatch":
        """Records ``start .. stop-1`` as a zero-copy view of the data."""
        n = len(self)
        start = max(0, min(start, n))
        stop = max(start, min(stop, n))
        lo = int(self.offsets[start])
        hi = int(self.offsets[stop])
        keys = self._keys[start:stop] if self._keys is not None else None
        return VarlenBatch(
            self.data[lo:hi], self.offsets[start : stop + 1] - lo, keys=keys
        )

    def take(self, order: Sequence[int]) -> "VarlenBatch":
        """A new batch with records permuted into ``order``."""
        keys = self.keys()
        out = bytearray()
        offsets = np.empty(len(order) + 1, dtype=np.int64)
        offsets[0] = 0
        for j, i in enumerate(order):
            out += self._mv[int(self.offsets[i]) : int(self.offsets[i + 1])]
            offsets[j + 1] = len(out)
        data = np.frombuffer(bytes(out), dtype=np.uint8)
        return VarlenBatch(data, offsets, keys=[keys[i] for i in order])

    def sort(self) -> "VarlenBatch":
        """Byte-lexicographic key sort, stable in input position."""
        keys = self.keys()
        order = sorted(range(len(self)), key=keys.__getitem__)
        return self.take(order)


def make_varlen_batch(
    keys: Sequence[bytes], payloads: Iterable[int]
) -> VarlenBatch:
    """Assemble a varlen batch from key/payload columns (cf. make_records)."""
    return VarlenBatch.build(keys, payloads)


def varlen_from_bytes(buf) -> VarlenBatch:
    """Parse a raw byte chunk into a batch (cf. records_from_bytes)."""
    return VarlenBatch.from_bytes(buf)


def merge_varlen_batches(parts: List[VarlenBatch]) -> VarlenBatch:
    """Merge key-sorted varlen batches, stable across parts in list order.

    Same concatenate-then-stable-sort strategy (and the same canonical
    (key, sequence, position) tie-break realization) as
    :func:`merge_record_arrays`.
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return VarlenBatch.empty()
    if len(parts) == 1:
        return parts[0]
    data = np.concatenate([p.data for p in parts])
    sizes = np.concatenate([np.diff(p.offsets) for p in parts])
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    keys: List[bytes] = []
    for p in parts:
        keys.extend(p.keys())
    return VarlenBatch(data, offsets, keys=keys).sort()


# -- integer embedding for the selection kernel -----------------------------


def embed_key(key: bytes, width: int) -> int:
    """Embed a NUL-free key into an int preserving lexicographic order.

    Right-pads with NUL to ``width`` bytes and reads big-endian, so for
    any two NUL-free keys shorter than ``width``,
    ``embed_key(a) < embed_key(b)`` iff ``a < b``.  ``width`` must
    exceed every key length in play (agreed globally via allreduce) —
    the pad byte sorts strictly below any real key byte, which is why
    keys must be NUL-free.
    """
    if len(key) >= width:
        raise ValueError(f"key of {len(key)} bytes needs width > {len(key)}")
    return int.from_bytes(key.ljust(width, b"\x00"), "big")


def unembed_key(value: int, width: int) -> bytes:
    """Invert :func:`embed_key` (diagnostics only)."""
    return value.to_bytes(width, "big").rstrip(b"\x00")


# -- LCP front coding -------------------------------------------------------
#
# The communication-efficient string sorting trick (Bingmann, Sanders,
# Schimek): a key sequence with high adjacent common prefixes — sorted
# samples, splitters, sorted record chunks — is sent as (lcp-with-
# previous, suffix) pairs.  The saved byte counts feed the wire-volume
# stats so ``raw == wire_payload + trimmed`` stays provable.


def _lcp(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def lcp_encode_keys(keys: Sequence[bytes]) -> Tuple[bytes, int]:
    """Front-code a key sequence.  Returns ``(wire, saved_bytes)``."""
    out = [struct.pack("<I", len(keys))]
    prev = b""
    saved = 0
    for key in keys:
        lcp = _lcp(prev, key)
        suffix = key[lcp:]
        out.append(struct.pack("<II", lcp, len(suffix)))
        out.append(suffix)
        saved += lcp
        prev = key
    return b"".join(out), saved


def lcp_decode_keys(buf) -> List[bytes]:
    mv = memoryview(buf).cast("B")
    (n,) = struct.unpack_from("<I", mv, 0)
    off = 4
    keys: List[bytes] = []
    prev = b""
    for _ in range(n):
        lcp, suffix_len = struct.unpack_from("<II", mv, off)
        off += 8
        key = prev[:lcp] + bytes(mv[off : off + suffix_len])
        off += suffix_len
        keys.append(key)
        prev = key
    if off != len(mv):
        raise ValueError(f"lcp key block: {len(mv) - off} trailing bytes")
    return keys


def lcp_encode_batch(batch: VarlenBatch) -> Tuple[bytes, int]:
    """Front-code a (key-sorted) record batch for the wire.

    Returns ``(wire, saved_bytes)`` where ``saved_bytes`` is the total
    of trimmed prefix bytes; the wire form prepends a ``u32`` record
    count and replaces each record's ``u32 key_len`` with
    ``u32 lcp | u32 suffix_len``, so
    ``len(wire) == 4 + batch.nbytes + 4 * len(batch) - saved_bytes``.
    """
    keys = batch.keys()
    out = [struct.pack("<I", len(keys))]
    prev = b""
    saved = 0
    for i, key in enumerate(keys):
        lcp = _lcp(prev, key)
        suffix = key[lcp:]
        out.append(struct.pack("<II", lcp, len(suffix)))
        out.append(suffix)
        out.append(struct.pack("<Q", batch.payload_at(i)))
        saved += lcp
        prev = key
    return b"".join(out), saved


def lcp_decode_batch(buf) -> VarlenBatch:
    mv = memoryview(buf).cast("B")
    (n,) = struct.unpack_from("<I", mv, 0)
    off = 4
    keys: List[bytes] = []
    payloads: List[int] = []
    prev = b""
    for _ in range(n):
        lcp, suffix_len = struct.unpack_from("<II", mv, off)
        off += 8
        key = prev[:lcp] + bytes(mv[off : off + suffix_len])
        off += suffix_len
        payloads.append(struct.unpack_from("<Q", mv, off)[0])
        off += 8
        keys.append(key)
        prev = key
    if off != len(mv):
        raise ValueError(f"lcp record block: {len(mv) - off} trailing bytes")
    return VarlenBatch.build(keys, payloads)


# -- string workload + checksum ---------------------------------------------


def string_key_from_u64(value: int) -> bytes:
    """Deterministic order-preserving map from a u64 key to a string key.

    The 16-digit hex prefix alone preserves the u64 order, so the whole
    map does; the variable tail (0-22 ``k`` repeats keyed off the value)
    gives the corpus genuine length diversity and long shared prefixes —
    exactly the regime LCP compression targets.  Equal inputs map to
    equal keys, so duplicate-heavy corpus entries stay duplicate-heavy.
    """
    value = int(value) & _U64_MASK
    return f"{value:016x}".encode("ascii") + b"." + b"k" * (value % 23)


#: 26 ** 14 > 2 ** 64: fourteen lowercase base-26 digits cover the key space.
_B26_WIDTH = 14


def _base26(value: int) -> bytes:
    digits = bytearray(_B26_WIDTH)
    for i in range(_B26_WIDTH - 1, -1, -1):
        digits[i] = 0x61 + value % 26
        value //= 26
    return bytes(digits)


def url_key_from_u64(value: int) -> bytes:
    """URL-corpus family: the u64 key as an ``https://`` address.

    The host and path carry the key as fixed-width base-26 digits with
    the separators at fixed offsets, so byte order equals u64 order; the
    variable ``?p=`` query tail only ever follows a fully discriminating
    prefix.  The long shared scheme+domain prefix is the classic
    real-world regime for front coding (every web-crawl key set starts
    with a handful of schemes and a heavy-hitter set of hosts).
    """
    value = int(value) & _U64_MASK
    digits = _base26(value)
    return (
        b"https://"
        + digits[:7]
        + b".example.com/"
        + digits[7:]
        + b"?p="
        + b"x" * (value % 19)
    )


#: Severity token for a log line; any deterministic pick keeps the map
#: duplicate-preserving, and variety makes the tails realistic.
_LOG_LEVELS = (b"DEBUG", b"INFO", b"WARN", b"ERROR")


def logline_key_from_u64(value: int) -> bytes:
    """Log-corpus family: the u64 key as a timestamped log line.

    The key becomes a fixed-width decimal ``seconds.micros`` timestamp
    (zero padding preserves numeric order bytewise), followed by a
    deterministic severity + message tail.  Sorting by line is sorting
    by time — the canonical log-merge workload — and nearby timestamps
    share long digit prefixes for the LCP coder to trim.
    """
    value = int(value) & _U64_MASK
    stamp = b"%014d.%06dZ" % (value // 10**6, value % 10**6)
    level = _LOG_LEVELS[value % 4]
    return stamp + b" " + level + b" worker=/job/" + b"r" * (value % 11)


#: The conformance-corpus string families: one synthetic map plus two
#: real-workload shapes.  Every family is an order- and duplicate-
#: preserving u64-to-bytes embedding, so any corpus key distribution
#: can be replayed under any family against the decoded sorted() oracle.
STRING_FAMILIES: Dict[str, Callable[[int], bytes]] = {
    "hex": string_key_from_u64,
    "url": url_key_from_u64,
    "log": logline_key_from_u64,
}


def resolve_string_family(name: str) -> Callable[[int], bytes]:
    """The key map for a string family, or ValueError for unknown names."""
    try:
        return STRING_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown string family {name!r}; choose from "
            f"{sorted(STRING_FAMILIES)}"
        ) from None


def generate_string_batch(
    start: int, count: int, seed: int = 0, skew: bool = False
) -> VarlenBatch:
    """String records ``start .. start+count-1`` (cf. generate_records)."""
    u64_keys = record_keys(start, count, seed=seed, skew=skew)
    keys = [string_key_from_u64(v) for v in u64_keys]
    payloads = np.arange(start, start + count, dtype=np.uint64)
    return VarlenBatch.build(keys, payloads)


def string_checksum(batch: VarlenBatch, acc: int = 0) -> int:
    """Order-independent checksum over (key, payload) pairs, mod 2^64.

    The varlen analogue of the gensort input checksum: summable across
    batches and workers in any order, so the merge phase can prove the
    output multiset equals the input multiset without a global gather.
    """
    total = acc
    for i in range(len(batch)):
        key = batch.key_at(i)
        contrib = (zlib.crc32(key) * 0x9E3779B1 + batch.payload_at(i) + 1)
        total = (total + contrib) & _U64_MASK
    return total


# -- varlen files -----------------------------------------------------------


def varlen_index_path(path: str) -> str:
    """Sidecar path holding the int64 record-boundary offsets."""
    return path + ".idx"


def write_varlen_file(path: str, batch: VarlenBatch) -> None:
    """Write a batch as ``path`` (raw records) + ``path.idx`` (boundaries)."""
    with open(path, "wb") as handle:
        handle.write(batch.bytes_view())
    with open(varlen_index_path(path), "wb") as handle:
        np.ascontiguousarray(batch.offsets, dtype=np.int64).tofile(handle)


def read_varlen_file(path: str) -> VarlenBatch:
    """Read a batch written by :func:`write_varlen_file`."""
    with open(path, "rb") as handle:
        data = np.fromfile(handle, dtype=np.uint8)
    offsets = np.fromfile(varlen_index_path(path), dtype=np.int64)
    return VarlenBatch(data, offsets)


# -- the record-model registry ----------------------------------------------


class RecordModel:
    """What the rest of the backend needs to know about a record format.

    ``name`` is the job-spec / CLI token; ``varlen`` selects the phase
    implementations (fixed-slot vs byte-rank); ``nominal_bytes`` is the
    per-record figure used for *sizing* (memory budgets, block sizing,
    records-per-worker) — for the string model it is the same 16 bytes,
    so a given ``--data-mib`` sorts the same record count under either
    model and sizing-sensitive invariants stay comparable.
    """

    name: str = "abstract"
    varlen: bool = False
    nominal_bytes: int = RECORD_BYTES

    def read_output(self, path: str):
        raise NotImplementedError

    def output_keys(self, path: str):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RecordModel {self.name}>"


class Fixed16Model(RecordModel):
    """The paper's fixed 16-byte (u64 key, u64 payload) element."""

    name = "fixed16"
    varlen = False

    def read_output(self, path: str) -> np.ndarray:
        return np.fromfile(path, dtype=NATIVE_DTYPE)

    def output_keys(self, path: str) -> np.ndarray:
        return keys_of(self.read_output(path))


class StringModel(RecordModel):
    """Length-prefixed variable records with byte-string keys."""

    name = "string"
    varlen = True

    def read_output(self, path: str) -> VarlenBatch:
        return read_varlen_file(path)

    def output_keys(self, path: str) -> List[bytes]:
        return self.read_output(path).keys()


MODELS = {"fixed16": Fixed16Model(), "string": StringModel()}


def resolve_model(name: str) -> RecordModel:
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown record model {name!r} (expected one of "
            f"{', '.join(sorted(MODELS))})"
        ) from None
