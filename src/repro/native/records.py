"""Native on-disk record format and its numpy kernels.

The native backend moves *real bytes*: records are fixed-size binary
structs written with ``ndarray.tofile`` and read back with
``numpy.fromfile``.  The layout mirrors the paper's 16-byte element
(:data:`repro.records.element.ELEM_PAPER_16B`): a little-endian 64-bit
key followed by a 64-bit payload.  The payload carries the gensort-style
record index, so a sorted output file can be traced back to the exact
input permutation during validation.

Keys come from :mod:`repro.workloads.gensort` — records are a pure
function of ``(seed, index)``, any sub-range can be generated
independently (each worker process generates its own slice), and the
order-independent checksum of the whole input is known without reading
it back.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..records.element import ELEM_PAPER_16B, KEY_DTYPE
from ..workloads.gensort import record_keys

__all__ = [
    "NATIVE_DTYPE",
    "RECORD_BYTES",
    "make_records",
    "generate_records",
    "sort_records",
    "merge_record_arrays",
    "read_records",
    "record_count",
    "records_from_bytes",
    "keys_of",
]

#: One native record: (key, payload), 16 bytes, little-endian.
NATIVE_DTYPE = np.dtype([("key", "<u8"), ("payload", "<u8")])

#: Bytes per native record (= the paper's 16-byte element).
RECORD_BYTES = NATIVE_DTYPE.itemsize

assert RECORD_BYTES == ELEM_PAPER_16B.elem_bytes


def make_records(keys: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """Assemble a structured record array from key/payload columns."""
    if len(keys) != len(payloads):
        raise ValueError(f"{len(keys)} keys vs {len(payloads)} payloads")
    out = np.empty(len(keys), dtype=NATIVE_DTYPE)
    out["key"] = keys
    out["payload"] = payloads
    return out


def generate_records(
    start: int, count: int, seed: int = 0, skew: bool = False
) -> np.ndarray:
    """Records ``start .. start+count-1`` of the gensort-style input.

    Keys are the deterministic gensort keys (uniform, or the
    duplicate-heavy Daytona-like distribution with ``skew=True``); the
    payload is the global record index.
    """
    keys = record_keys(start, count, seed=seed, skew=skew)
    payloads = np.arange(start, start + count, dtype=np.uint64)
    return make_records(keys, payloads)


def sort_records(records: np.ndarray) -> np.ndarray:
    """Sort records by key, stable in input position (ties keep order)."""
    order = np.argsort(records["key"], kind="stable")
    return records[order]


def merge_record_arrays(parts: List[np.ndarray]) -> np.ndarray:
    """Merge key-sorted record arrays into one key-sorted array.

    Stable across parts in list order, which realizes the package's
    canonical (key, sequence, position) tie-breaking when the caller
    passes parts in sequence order.  Like
    :func:`repro.records.arrays.merge_sorted_arrays` this is implemented
    as concatenate + stable sort (the paper explicitly allows replacing
    batch merging by sorting of batches).
    """
    parts = [p for p in parts if len(p)]
    if not parts:
        return np.empty(0, dtype=NATIVE_DTYPE)
    if len(parts) == 1:
        return parts[0]
    out = np.concatenate(parts)
    order = np.argsort(out["key"], kind="stable")
    return out[order]


def read_records(path: str, start: int, count: int) -> np.ndarray:
    """Read ``count`` records from ``path`` beginning at record ``start``."""
    with open(path, "rb") as handle:
        handle.seek(start * RECORD_BYTES)
        return np.fromfile(handle, dtype=NATIVE_DTYPE, count=count)


def record_count(path: str) -> int:
    """Number of whole records stored in ``path``."""
    import os

    size = os.path.getsize(path)
    if size % RECORD_BYTES:
        raise ValueError(f"{path}: {size} bytes is not a whole number of records")
    return size // RECORD_BYTES


def records_from_bytes(buf: bytes) -> np.ndarray:
    """View a raw byte chunk (as sent over a pipe) as a record array."""
    if len(buf) % RECORD_BYTES:
        raise ValueError(f"{len(buf)} bytes is not a whole number of records")
    return np.frombuffer(buf, dtype=NATIVE_DTYPE)


def bytes_view(records: np.ndarray) -> memoryview:
    """Zero-copy byte view of a contiguous record array.

    The inverse of :func:`records_from_bytes`: the hot path hands chunks
    to the interconnect as views of the record arrays they were sliced
    from (``len()`` of the view is the byte length), so a transport with
    buffer support — shm rings, TCP gather-writes — never materializes an
    intermediate ``bytes``.  A non-contiguous input is first compacted
    (the one place the copy is unavoidable).
    """
    if not records.flags["C_CONTIGUOUS"]:
        records = np.ascontiguousarray(records)
    return records.view(np.uint8).data


def keys_of(records: np.ndarray) -> np.ndarray:
    """The key column of a record array (same dtype as the simulator keys)."""
    return records["key"].astype(KEY_DTYPE, copy=False)
