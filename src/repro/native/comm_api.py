"""The comm contract of the native backend, and its transport-agnostic core.

Two transports carry CANONICALMERGESORT's interconnect traffic today —
:class:`repro.native.comm.PipeComm` (a full mesh of ``multiprocessing``
pipes, single host) and :class:`repro.net.tcp.TcpComm` (a full mesh of
TCP sockets, any host) — and :mod:`repro.native.phases` must run
unchanged over either.  This module pins that surface down:

* :class:`Comm` is the typed :class:`~typing.Protocol` every transport
  satisfies (the contract is spelled out in its docstring);
* :class:`MeshComm` is the shared implementation of everything *above*
  the transport: the sender thread, the stash, the collectives, the
  chunked exchange, the probe service, and the wire accounting.  A
  transport subclasses it and provides exactly two primitives —
  :meth:`MeshComm._transmit` (push one message to one peer) and
  :meth:`MeshComm._poll_once` (pull whatever arrived into the stash).

The contract
------------

**Addressing.**  ``n_workers`` ranks, ``0 .. n_workers-1``; every rank
holds one bidirectional channel to every other rank (a full mesh).

**Ordering.**  Each channel is FIFO: messages posted to a peer arrive in
post order.  There is *no* ordering across channels — a fast peer's
next-phase message can arrive before a slow peer's current-phase one.

**Epochs.**  Every collective increments a per-rank epoch counter and
tags its protocol messages with it (``("__ag__", epoch, obj)``, ...).
Because all ranks execute the same collectives in the same order, the
counters agree, and the tag rejects stale or early traffic: a receive
loop matches only its own epoch and stashes everything else.

**Stashing.**  ``recv_match(match)`` returns the first pending message
satisfying ``match(peer, msg)`` and *parks* every non-matching message
(per-peer, order-preserving) for a later receive.  Nothing is dropped.

**Deadlock-freedom.**  All sends run on a single background sender
thread fed from a queue, so the main thread always keeps draining
arrivals even when the OS-level channel to some peer is full.

**Failure.**  A dead or misbehaving peer raises :class:`CommError`; an
expected message that never arrives raises :class:`CommTimeout` (a
subclass) after ``timeout`` seconds.  Never a hang.

The simulator's :class:`repro.cluster.mpi.Comm` is the third party to
this contract in spirit — same collectives, same epoch discipline — but
its API is event-driven (rank-parameterized calls returning simulation
events), so it satisfies the contract's semantics, not this Protocol's
signatures.  The correspondence is documented there.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "Comm",
    "MeshComm",
    "CommError",
    "CommTimeout",
    "JobInterrupted",
    "DEFAULT_TIMEOUT",
    "DEFAULT_PENDING_SENDS",
    "payload_bytes",
    "message_epoch",
    "pack_fence",
]

#: Default receive timeout: generous, only to turn a wedged cluster into
#: a diagnosable error instead of a hang.
DEFAULT_TIMEOUT = 300.0

#: Default bulk-exchange backpressure: at most this many chunks parked in
#: the send queue before the producer is throttled.
DEFAULT_PENDING_SENDS = 4


class CommError(RuntimeError):
    """A peer misbehaved (protocol violation or dead connection)."""


class CommTimeout(CommError):
    """No expected message arrived within the timeout."""


class JobInterrupted(CommError):
    """The owning service interrupted this job (cancel or peer failure).

    Raised out of a comm operation on a warm-pool worker when the
    service posts an interrupt for the job currently running; the
    worker's phase body reports it like any other failure and the pool
    loop survives to take the next job.
    """


def pack_fence(job_tag: int, epoch: int) -> int:
    """Composite (job, epoch) wire fence: ``(job_tag << 8) | epoch % 256``.

    The fence a frame carries must match the receiver's exactly: a
    frame from another *job* (different ``job_tag``) or another restart
    *attempt* of the same job (different epoch) is dropped, never
    delivered.  Single-shot runs use ``job_tag=0``, which degenerates to
    the historic epoch-only fence byte.
    """
    return ((int(job_tag) & 0xFFFFFFFF) << 8) | (int(epoch) & 0xFF)


def payload_bytes(obj) -> int:
    """Record bytes riding in a message (nested bytes-like items).

    This is the *payload estimate* behind all wire accounting: control
    fields (strings, ints, array samples) are noise next to the record
    chunks, so only bytes-like items count.  Recursive over tuples
    because exchange payloads arrive wrapped (``("__xch__", epoch,
    ("a2a", r, k, buf))``).
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, tuple):
        return sum(payload_bytes(item) for item in obj)
    return 0


def message_epoch(msg) -> int:
    """The collective epoch a protocol message is tagged with (0 if none).

    Framed transports stamp this into the frame header so a stale or
    cross-epoch frame can be rejected below the pickle layer.
    """
    if (
        isinstance(msg, tuple)
        and len(msg) >= 2
        and isinstance(msg[0], str)
        and msg[0].startswith("__")
        and isinstance(msg[1], int)
        and 0 <= msg[1] < 2**32
    ):
        return msg[1]
    return 0


@runtime_checkable
class Comm(Protocol):
    """What the native phases require of a transport (see module docs)."""

    rank: int
    n_workers: int
    timeout: float

    def post(self, peer: int, msg: tuple) -> None: ...

    def pending_sends(self) -> int: ...

    def flush(self, timeout: Optional[float] = None) -> None: ...

    def recv_match(
        self,
        match: Callable[[int, tuple], bool],
        timeout: Optional[float] = None,
    ) -> Tuple[int, tuple]: ...

    def try_recv_match(
        self, match: Callable[[int, tuple], bool]
    ) -> Optional[Tuple[int, tuple]]: ...

    def barrier(self) -> None: ...

    def allgather(self, obj) -> List: ...

    def allreduce(self, value, op: Callable) -> object: ...

    def exchange(
        self,
        outgoing: Iterable[Tuple[int, tuple]],
        on_chunk: Callable[[int, tuple], None],
    ) -> None: ...

    def selection_round(
        self,
        coroutine,
        local_lookup: Callable[[int], int],
        owner_of: Callable[[int], int],
    ): ...

    def set_phase(self, phase: str) -> None: ...

    def close(self) -> None: ...


class MeshComm:
    """Everything above the transport: collectives, stash, accounting.

    Subclasses provide the channel primitives:

    * :meth:`_transmit` — synchronously push one message to one peer
      (called only from the sender thread; may block);
    * :meth:`_poll_once` — pull every immediately available message into
      the stash via :meth:`_stash_message`, waiting at most
      ``block_timeout`` seconds for the first one;

    plus optional lifecycle hooks (``_close_transport``,
    ``_sever_transport``, ``_wedge_transport``, ``_on_send_idle``,
    ``_idle_seconds``, ``_timeout_context``).  The subclass must call
    :meth:`_start_sender` once its channels are usable.
    """

    def __init__(
        self,
        rank: int,
        n_workers: int,
        peers: Iterable[int],
        timeout: float = DEFAULT_TIMEOUT,
        pending_sends: int = DEFAULT_PENDING_SENDS,
        chaos=None,
        job_epoch: int = 0,
        job_tag: int = 0,
    ):
        peers = sorted(peers)
        if peers != [p for p in range(n_workers) if p != rank]:
            raise ValueError(
                f"rank {rank}/{n_workers}: need one connection per peer, "
                f"got {peers}"
            )
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if pending_sends < 1:
            raise ValueError(f"pending_sends must be >= 1, got {pending_sends}")
        self.rank = rank
        self.n_workers = n_workers
        self.peers: Tuple[int, ...] = tuple(peers)
        self.timeout = timeout
        self.max_pending_sends = int(pending_sends)
        #: Optional fault-injection spec (duck-typed; may delay polls).
        self.chaos = chaos
        #: Job epoch (restart attempt number) used to fence stale frames:
        #: a message stamped with another epoch is dropped, not delivered.
        #: Transports stamp/check it in their channel primitives.
        self.job_epoch = int(job_epoch)
        #: Numeric job identity (service multiplexing); 0 = single-shot.
        #: Combined with the epoch into the composite wire fence so two
        #: jobs' frames can never cross, even on a reused worker.
        self.job_tag = int(job_tag)
        #: The composite fence every outgoing frame carries and every
        #: incoming MSG frame must match (see :func:`pack_fence`).
        self.wire_fence = pack_fence(self.job_tag, self.job_epoch)
        #: Stale frames dropped by the (job, epoch) fence (recovery counter).
        self.fenced_drops = 0
        self._epoch = 0
        #: Messages received but not yet consumed, per peer, in order.
        self._stash: Dict[int, deque] = {p: deque() for p in self.peers}
        self._sendq: "queue.Queue" = queue.Queue()
        self._send_lock = threading.Condition()
        self._enqueued = 0
        self._sent = 0
        self._send_error: Optional[BaseException] = None
        self._sender: Optional[threading.Thread] = None
        self._severed = False
        self._wedged = False
        #: Current phase label for the wire accounting below.
        self._phase = "startup"
        #: Bytes moved through the mesh (payload estimate), for stats.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Phase -> payload bytes actually posted to / received from peers.
        self.wire_sent: Dict[str, int] = {}
        self.wire_recv: Dict[str, int] = {}
        #: Phase -> payload bytes of exchange chunks this rank kept for
        #: itself.  Wire + local is a phase's full communication volume —
        #: the quantity the paper's N + o(N) bound is stated for.
        self.local_bytes: Dict[str, int] = {}
        #: Peer -> payload bytes sent to / received from that peer.
        self.peer_sent: Dict[int, int] = {p: 0 for p in self.peers}
        self.peer_recv: Dict[int, int] = {p: 0 for p in self.peers}

    #: Best-effort bounds used by :meth:`shutdown`.  Class attributes so
    #: the wedged-sender teardown tests can shrink them instead of
    #: waiting out three five-second joins.
    SHUTDOWN_FLUSH_TIMEOUT = 5.0
    SHUTDOWN_JOIN_TIMEOUT = 5.0

    # -- transport primitives (subclass responsibilities) ---------------------

    def _transmit(self, peer: int, msg: tuple) -> None:
        raise NotImplementedError

    def _poll_once(self, block_timeout: float) -> bool:
        raise NotImplementedError

    def _close_transport(self) -> None:
        """Release transport resources at :meth:`close` (default: none)."""

    def _sever_transport(self) -> None:
        """Abruptly drop every channel (chaos hook; default: none)."""

    def _wedge_transport(self) -> None:
        """Leave channels half-broken (chaos hook; default: none)."""

    def _idle_seconds(self) -> Optional[float]:
        """Sender-thread idle tick; ``None`` blocks until the next send."""
        return None

    def _on_send_idle(self) -> None:
        """Called on the sender thread after an idle tick (heartbeats)."""

    def _timeout_context(self) -> str:
        """Extra diagnosis appended to timeout messages (peer liveness)."""
        return ""

    # -- low-level send/recv --------------------------------------------------

    def _start_sender(self) -> None:
        self._sender = threading.Thread(
            target=self._send_loop, name=f"native-send-{self.rank}", daemon=True
        )
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            try:
                item = self._sendq.get(timeout=self._idle_seconds())
            except queue.Empty:
                try:
                    self._on_send_idle()
                except Exception:
                    # A dead peer fails the *receive* side with a clean
                    # EOF; an idle-time send error adds nothing.
                    pass
                continue
            if item is None:
                return
            peer, msg = item
            if not self._wedged:
                try:
                    self._transmit(peer, msg)
                except BaseException as exc:  # surface on the main thread
                    with self._send_lock:
                        self._send_error = exc
                        self._send_lock.notify_all()
                    return
            with self._send_lock:
                self._sent += 1
                self._send_lock.notify_all()

    def _check_open(self) -> None:
        if self._severed:
            raise CommError(
                f"rank {self.rank}: connection severed (chaos)"
            )

    def _chaos_poll(self) -> None:
        """Fire the receive-poll fault hook (subclasses call per poll)."""
        if self.chaos is not None:
            self.chaos.on_recv_poll(self.rank)

    def _stash_message(self, peer: int, msg: tuple) -> None:
        """Account and park one arrived message (subclasses call this)."""
        est = payload_bytes(msg)
        if est:
            self.bytes_received += est
            self.wire_recv[self._phase] = self.wire_recv.get(self._phase, 0) + est
            self.peer_recv[peer] = self.peer_recv.get(peer, 0) + est
        self._stash[peer].append(msg)

    def set_phase(self, phase: str) -> None:
        """Attribute subsequent wire traffic to ``phase`` (stats only)."""
        self._phase = phase

    def post(self, peer: int, msg: tuple) -> None:
        """Queue a message for ``peer`` (self-sends loop back locally)."""
        self._check_open()
        if self._send_error is not None:
            raise CommError(f"sender thread died: {self._send_error!r}")
        if peer == self.rank:
            self._stash.setdefault(peer, deque()).append(msg)
            return
        est = payload_bytes(msg)
        if est:
            self.bytes_sent += est
            self.wire_sent[self._phase] = self.wire_sent.get(self._phase, 0) + est
            self.peer_sent[peer] = self.peer_sent.get(peer, 0) + est
        self._enqueued += 1
        self._sendq.put((peer, msg))

    def pending_sends(self) -> int:
        """Messages queued but not yet pushed into their channel."""
        with self._send_lock:
            return self._enqueued - self._sent

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every queued message has entered its channel.

        Raises :class:`CommTimeout` — naming how many messages are still
        pending — when the deadline passes first (a wedged peer whose
        channel stopped draining).
        """
        self._check_open()
        deadline = timeout if timeout is not None else self.timeout
        with self._send_lock:
            ok = self._send_lock.wait_for(
                lambda: self._send_error is not None
                or self._sent >= self._enqueued,
                timeout=deadline,
            )
            still_pending = self._enqueued - self._sent
        if self._send_error is not None:
            raise CommError(f"sender thread died: {self._send_error!r}")
        if not ok:
            raise CommTimeout(
                f"rank {self.rank}: flush timed out after {deadline:.1f}s "
                f"with {still_pending} send(s) still pending"
                f"{self._timeout_context()}"
            )

    def close(self) -> None:
        """Stop the sender thread (queued messages are flushed first)."""
        self.shutdown(reuse=False)

    def shutdown(self, reuse: bool = False) -> None:
        """Stop the sender thread; with ``reuse`` leave channels to the caller.

        ``reuse=True`` is the warm-pool idle reset: flush best-effort,
        stop and join the sender thread, and drop any parked messages —
        but do *not* tear down the transport.  The caller owns the
        channels (per-job pipes it will close itself, or sockets it will
        hand to the next job); the comm object is finished either way.
        A sender thread that refuses to die within the join timeout is
        abandoned — it only references this job's channels, so once the
        caller closes them its next write fails and it exits.

        Without ``reuse``, a sender still blocked mid-transmit after the
        join timeout (a collective raised while a peer stopped draining)
        is *reaped*, not abandoned: closing the transport fails its
        in-flight write, and a second join collects it.  Leaving it
        parked forever would leak the thread and pin the channel fds for
        the life of the process.
        """
        if not self._severed:
            try:
                self.flush(timeout=self.SHUTDOWN_FLUSH_TIMEOUT)
            except CommError:
                pass
        self._sendq.put(None)
        if self._sender is not None:
            self._sender.join(timeout=self.SHUTDOWN_JOIN_TIMEOUT)
        if reuse:
            for dq in self._stash.values():
                dq.clear()
        else:
            self._close_transport()
            if self._sender is not None and self._sender.is_alive():
                self._sender.join(timeout=self.SHUTDOWN_JOIN_TIMEOUT)

    # -- chaos hooks ----------------------------------------------------------

    def sever(self) -> None:
        """Chaos: abruptly drop every peer channel, as a NIC death would.

        Peers observe EOF (a :class:`CommError`); this rank's own next
        comm operation raises :class:`CommError` too, so whichever side
        touches the mesh first reports the failure.
        """
        self._severed = True
        self._sendq.put(None)  # stop the sender even if idle
        self._sever_transport()

    def wedge(self) -> None:
        """Chaos: stop draining sends without closing anything.

        The mesh looks alive (no EOF) but this rank's traffic stops
        mid-stream — peers must escalate to :class:`CommTimeout`.
        """
        self._wedged = True
        self._wedge_transport()

    # -- matching receives ----------------------------------------------------

    def recv_match(
        self,
        match: Callable[[int, tuple], bool],
        timeout: Optional[float] = None,
    ) -> Tuple[int, tuple]:
        """Next message satisfying ``match(peer, msg)``, stashing the rest.

        Scans parked messages first (preserving per-peer order), then
        blocks on the transport.  Raises :class:`CommTimeout` when
        nothing matching arrives in time.
        """
        self._check_open()
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while True:
            for peer, dq in self._stash.items():
                for i, msg in enumerate(dq):
                    if match(peer, msg):
                        del dq[i]
                        return peer, msg
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeout(
                    f"rank {self.rank}: timed out waiting for a matching "
                    f"message{self._timeout_context()}"
                )
            if self._send_error is not None:
                raise CommError(f"sender thread died: {self._send_error!r}")
            self._poll_once(min(0.25, remaining))

    def try_recv_match(
        self, match: Callable[[int, tuple], bool]
    ) -> Optional[Tuple[int, tuple]]:
        """Non-blocking :meth:`recv_match` (one poll, no waiting)."""
        self._check_open()
        for peer, dq in self._stash.items():
            for i, msg in enumerate(dq):
                if match(peer, msg):
                    del dq[i]
                    return peer, msg
        if self._poll_once(0.0):
            for peer, dq in self._stash.items():
                for i, msg in enumerate(dq):
                    if match(peer, msg):
                        del dq[i]
                        return peer, msg
        return None

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Wait until every worker reached this point."""
        self.allgather(None)

    def allgather(self, obj) -> List:
        """Everyone contributes ``obj``; everyone gets the rank-ordered list."""
        self._epoch += 1
        epoch = self._epoch
        out: List = [None] * self.n_workers
        out[self.rank] = obj
        for peer in self.peers:
            self.post(peer, ("__ag__", epoch, obj))
        need = set(self.peers)
        while need:
            peer, msg = self.recv_match(
                lambda p, m: p in need and m[0] == "__ag__" and m[1] == epoch
            )
            out[peer] = msg[2]
            need.discard(peer)
        return out

    def allreduce(self, value, op: Callable) -> object:
        """Reduce ``value`` over all workers with binary ``op``."""
        values = self.allgather(value)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    # -- bulk chunked all-to-all ----------------------------------------------

    def exchange(
        self,
        outgoing: Iterable[Tuple[int, tuple]],
        on_chunk: Callable[[int, tuple], None],
    ) -> None:
        """Chunked, bounded-memory all-to-all.

        ``outgoing`` lazily yields ``(dest, payload_msg)`` pairs; payloads
        destined for *this* rank are delivered directly.  ``on_chunk(peer,
        payload_msg)`` consumes arrivals (e.g. writes them to a spill
        file).  The producer iterator is only advanced while the send
        queue is short, so at most ``max_pending_sends`` chunks of record
        data sit in user-space buffers at any time.

        Completion: each worker sends an end-of-stream marker to every
        peer after its last chunk; the call returns once all markers are
        in, all local sends are flushed, and a closing barrier passes.
        """
        self._check_open()
        self._epoch += 1
        epoch = self._epoch
        it: Iterator[Tuple[int, tuple]] = iter(outgoing)
        producing = True
        eof_from = set()
        peers = set(self.peers)
        deadline = time.monotonic() + self.timeout

        def is_mine(p: int, m: tuple) -> bool:
            return m[0] in ("__xch__", "__xeof__") and m[1] == epoch

        while True:
            if time.monotonic() > deadline:
                owing = sorted(peers - eof_from)
                raise CommTimeout(
                    f"rank {self.rank}: exchange made no progress for "
                    f"{self.timeout:.0f}s; peers {owing} never finished "
                    f"their stream (stalled or dead PE)"
                    f"{self._timeout_context()}"
                )
            # Drain everything receivable right now.
            while True:
                got = self.try_recv_match(is_mine)
                if got is None:
                    break
                deadline = time.monotonic() + self.timeout
                peer, msg = got
                if msg[0] == "__xeof__":
                    eof_from.add(peer)
                else:
                    on_chunk(peer, msg[2])
            # Feed the sender while there is room.
            while producing and self.pending_sends() < self.max_pending_sends:
                try:
                    dest, payload = next(it)
                except StopIteration:
                    producing = False
                    for peer in peers:
                        self.post(peer, ("__xeof__", epoch))
                    break
                if dest == self.rank:
                    est = payload_bytes(payload)
                    if est:
                        self.local_bytes[self._phase] = (
                            self.local_bytes.get(self._phase, 0) + est
                        )
                    on_chunk(self.rank, payload)
                else:
                    self.post(dest, ("__xch__", epoch, payload))
            if not producing and eof_from == peers:
                break
            if peers or producing:
                # Nothing immediately actionable: wait briefly for traffic.
                if producing and self.pending_sends() >= self.max_pending_sends:
                    self._poll_once(0.005)
                elif peers and eof_from != peers:
                    self._poll_once(0.05)
            else:
                break
        self.flush()
        self.barrier()

    # -- probe service (distributed multiway selection) -----------------------

    def selection_round(
        self,
        coroutine,
        local_lookup: Callable[[int], int],
        owner_of: Callable[[int], int],
    ):
        """Drive a selection coroutine whose probes may live on peers.

        ``coroutine`` yields ``(sequence, position)`` probe requests (the
        contract of :func:`repro.algos.multiway_selection.select_coroutine`).
        ``owner_of(seq)`` maps a sequence index to the worker holding it;
        ``local_lookup(pos)`` answers probes against *this* worker's own
        sequence.  Every worker must call this exactly once per round:
        the call keeps answering peers' probes until all of them have
        finished their own selection, so the collective as a whole cannot
        starve.  Returns the coroutine's :class:`SelectionResult`.
        """
        self._check_open()
        self._epoch += 1
        epoch = self._epoch
        peers = set(self.peers)
        done_from = set()
        probe_seq = 0

        def serve(peer: int, msg: tuple) -> bool:
            """Handle one protocol message; True when it was consumed."""
            kind = msg[0]
            if kind == "__prb__" and msg[1] == epoch:
                self.post(peer, ("__prr__", epoch, msg[2], local_lookup(msg[3])))
                return True
            if kind == "__prd__" and msg[1] == epoch:
                done_from.add(peer)
                return True
            return False

        def pump(reply_id: Optional[int]) -> Optional[int]:
            """Process one message; returns a probe reply if it matches."""
            def match(p, m):
                return m[0] in ("__prb__", "__prd__", "__prr__") and m[1] == epoch

            peer, msg = self.recv_match(match)
            if msg[0] == "__prr__":
                if reply_id is None or msg[2] != reply_id:
                    raise CommError(
                        f"rank {self.rank}: unexpected probe reply {msg[2]}"
                    )
                return msg[3]
            serve(peer, msg)
            return None

        result = None
        try:
            request = next(coroutine)
            while True:
                seq, pos = request
                worker = owner_of(seq)
                if worker == self.rank:
                    request = coroutine.send(local_lookup(pos))
                    continue
                probe_seq += 1
                self.post(worker, ("__prb__", epoch, probe_seq, pos))
                key = None
                while key is None:
                    key = pump(probe_seq)
                request = coroutine.send(key)
        except StopIteration as stop:
            result = stop.value
        # Own selection finished: tell everyone, keep serving until all done.
        for peer in peers:
            self.post(peer, ("__prd__", epoch))
        while done_from != peers:
            pump(None)
        return result
