"""Conformance and stress testing: corpus, oracle, differential, chaos.

The subsystem the ``conformance`` CLI subcommand, the ``-m conformance``
pytest tier and the tier-1 quick tests all build on:

* :mod:`repro.testing.corpus` — named, seeded adversarial workloads;
* :mod:`repro.testing.oracle` — ``np.sort`` ground truth + invariants;
* :mod:`repro.testing.differential` — sim vs native vs oracle cases;
* :mod:`repro.testing.properties` — seeded property search with
  shrink-on-failure and replay tokens;
* :mod:`repro.testing.chaos` — deterministic native fault injection.

Submodules import lazily where they need the backends, so importing
``repro.testing`` stays cheap.
"""

from . import corpus, oracle  # noqa: F401
from .chaos import ChaosInjected, ChaosSpec, kill_points  # noqa: F401
from .differential import (  # noqa: F401
    CaseResult,
    CaseSpec,
    full_specs,
    quick_specs,
    run_case,
    run_specs,
)

__all__ = [
    "corpus",
    "oracle",
    "ChaosSpec",
    "ChaosInjected",
    "kill_points",
    "CaseSpec",
    "CaseResult",
    "quick_specs",
    "full_specs",
    "run_case",
    "run_specs",
]
