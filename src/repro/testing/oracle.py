"""The reference oracle: what a correct canonical sort *must* produce.

Ground truth is ``np.sort`` over the concatenated input plus the paper's
canonical output specification — PE *i* gets exactly the elements of
global ranks ``i·N/P .. (i+1)·N/P − 1`` (Section IV).  The oracle also
owns the reusable invariant checkers the differential harness and the
unit tests share:

* exact splitter ranks: a splitter matrix must cut every run at
  positions summing to exactly ``i·N/P`` — not ±1 (Section IV-A);
* valsort-style order-independent checksums;
* conservation: records in == records out, per phase and end to end.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "canonical_share",
    "canonical_targets",
    "expected_outputs",
    "multiset_checksum",
    "splitter_rank_issues",
    "partition_issues",
]

_MASK = 0xFFFFFFFFFFFFFFFF


def canonical_share(total: int, n_ranks: int, rank: int) -> int:
    """Record count rank ``rank`` must hold in the canonical output."""
    return (rank + 1) * total // n_ranks - rank * total // n_ranks


def canonical_targets(total: int, n_ranks: int) -> List[int]:
    """The exact global ranks ``i·N/P`` where each PE's output starts."""
    return [rank * total // n_ranks for rank in range(n_ranks)]


def expected_outputs(parts: Sequence[np.ndarray], n_ranks: int = None) -> List[np.ndarray]:
    """The canonical per-rank outputs for per-rank inputs ``parts``.

    ``n_ranks`` defaults to ``len(parts)`` (outputs on the same PEs the
    input lived on, the usual configuration).
    """
    n_ranks = len(parts) if n_ranks is None else n_ranks
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if parts:
        whole = np.sort(np.concatenate([np.asarray(p) for p in parts]), kind="stable")
    else:
        whole = np.empty(0, dtype=np.uint64)
    total = len(whole)
    return [
        whole[rank * total // n_ranks : (rank + 1) * total // n_ranks]
        for rank in range(n_ranks)
    ]


def multiset_checksum(keys: np.ndarray) -> int:
    """Order-independent valsort-style checksum (sum of keys mod 2^64)."""
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        return 0
    with np.errstate(over="ignore"):
        return int(np.add.reduce(keys)) & _MASK


def splitter_rank_issues(
    splits: Sequence[Sequence[int]], lengths: Sequence[int], n_ranks: int
) -> List[str]:
    """Check a (P+1) × R splitter matrix for *exact* iN/P ranks.

    ``splits[i][r]`` is where rank i's output starts in run r; row P must
    hold the run lengths.  Returns human-readable violations (empty ==
    the invariant holds).  The paper's correctness argument needs the
    ranks exact — off-by-one splitters silently unbalance the output.
    """
    issues: List[str] = []
    total = sum(int(n) for n in lengths)
    if len(splits) != n_ranks + 1:
        return [f"splitter matrix has {len(splits)} rows, want P+1 = {n_ranks + 1}"]
    for i, row in enumerate(splits):
        if len(row) != len(lengths):
            issues.append(f"row {i} has {len(row)} runs, want {len(lengths)}")
            continue
        want = total if i == n_ranks else i * total // n_ranks
        got = sum(int(p) for p in row)
        if got != want:
            issues.append(
                f"row {i}: splitter ranks sum to {got}, exact target is "
                f"{want} (i*N/P with N={total}, P={n_ranks})"
            )
        for r, pos in enumerate(row):
            if not 0 <= int(pos) <= int(lengths[r]):
                issues.append(f"row {i} run {r}: position {pos} outside 0..{lengths[r]}")
        if i > 0:
            for r in range(len(lengths)):
                if int(row[r]) < int(splits[i - 1][r]):
                    issues.append(
                        f"run {r}: row {i} position {row[r]} behind row "
                        f"{i - 1} position {splits[i - 1][r]}"
                    )
    return issues


def partition_issues(
    seqs: Sequence[np.ndarray], positions: Sequence[int], rank: int
) -> List[str]:
    """Check one selection result for exactness and the partition property.

    ``sum(positions)`` must equal ``rank`` *exactly*, and every element
    left of a splitter must precede every element right of one under the
    (key, sequence, position) order.
    """
    issues: List[str] = []
    got = sum(int(p) for p in positions)
    if got != rank:
        issues.append(f"positions sum to {got}, exact rank is {rank}")
    left_max = None
    right_min = None
    for j, seq in enumerate(seqs):
        p = int(positions[j])
        if not 0 <= p <= len(seq):
            issues.append(f"sequence {j}: position {p} outside 0..{len(seq)}")
            continue
        if p > 0:
            cand = (int(seq[p - 1]), j, p - 1)
            left_max = cand if left_max is None or cand > left_max else left_max
        if p < len(seq):
            cand = (int(seq[p]), j, p)
            right_min = cand if right_min is None or cand < right_min else right_min
    if left_max is not None and right_min is not None and left_max >= right_min:
        issues.append(
            f"partition property violated: left max {left_max} >= right min {right_min}"
        )
    return issues
