"""``python -m repro conformance``: the conformance harness entry point.

Modes (combinable; exit code 0 iff everything passed)::

    python -m repro conformance --quick            # tier-1 pruned matrix
    python -m repro conformance --full             # nightly: entries x sizings
    python -m repro conformance --chaos            # kill-at-boundary sweep
    python -m repro conformance --search 50        # property-based search
    python -m repro conformance --replay <token>   # one pinned case
    python -m repro conformance --list             # corpus taxonomy

``--json`` emits one machine-readable object (what the CI job archives);
``--report FILE`` additionally writes it to a file, so a failing nightly
run can upload the minimized reproducers as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import List

from . import chaos, corpus, differential, properties


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro conformance",
        description="Differential conformance: sim backend vs native "
        "backend vs np.sort, plus native fault injection.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the pruned tier-1 matrix (<=8 corpus cases, both backends)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the full nightly matrix (every entry x sizing)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="kill a native worker at every phase boundary; each run must "
        "fail fast with a clean diagnostic",
    )
    parser.add_argument(
        "--pipelined", action="store_true",
        help="additionally run native-only pipelined twins (read-ahead + "
        "write-behind) of every matrix case, and run the chaos sweep with "
        "pipelined I/O plus a torn-write-inside-write-behind case",
    )
    parser.add_argument(
        "--transport", choices=("pipe", "tcp", "shm", "both", "all"),
        default="pipe",
        help="native interconnect for matrix cases; 'tcp' or 'shm' adds "
        "native-only twins of every matrix case over that transport (and "
        "runs the chaos sweep over it too); 'both' = pipe+tcp, "
        "'all' = pipe+tcp+shm",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="additionally run native-only recovery twins of every matrix "
        "case (chaos kill + --max-restarts 1; the resumed sort must agree "
        "bitwise with the oracle), and flip the chaos sweep into recovery "
        "mode (kill/sever/wedge faults must be survived, not just failed "
        "fast)",
    )
    parser.add_argument(
        "--strings", action="store_true",
        help="additionally run native-only string twins of every matrix "
        "case (variable-length records via the order-preserving u64-to-"
        "string map, LCP-compressed splitters, decoded sorted() oracle)",
    )
    parser.add_argument(
        "--algo", choices=("canonical", "striped", "guidesort", "all"),
        default="canonical",
        help="native sort backend for matrix cases; 'striped' or "
        "'guidesort' adds native-only twins of every matrix case on that "
        "backend (differentially tested byte-for-byte against the same "
        "np.sort oracle); 'all' adds both",
    )
    parser.add_argument(
        "--recover-smoke", action="store_true",
        help="run only the recovery smoke (one boundary kill + resume per "
        "transport); the fast push-time CI gate",
    )
    parser.add_argument(
        "--service-smoke", action="store_true",
        help="run the sort-service smoke (live daemon, two overlapping "
        "wire jobs, clean shutdown); the push-time CI gate for the "
        "service subsystem",
    )
    parser.add_argument(
        "--service-chaos", action="store_true",
        help="kill a pool worker mid-job on a live sort service: the "
        "victim job must recover via its per-job supervisor, a "
        "concurrent job must finish untouched, and the pool must respawn "
        "the worker",
    )
    parser.add_argument(
        "--keep-failures", metavar="DIR", default=None,
        help="copy each failing chaos case's spill directory (manifests "
        "included) plus its verdict into DIR as a reproducer artifact",
    )
    parser.add_argument(
        "--search", type=int, metavar="N", default=0,
        help="run N random property-based cases (shrunk on failure)",
    )
    parser.add_argument(
        "--replay", metavar="TOKEN", default=None,
        help="replay one case token (entry:sizing:p<P>:s<seed>:rand|norand:"
        "selection[:backends])",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_corpus",
        help="print the corpus taxonomy and exit",
    )
    parser.add_argument("--seed", type=int, default=42, help="matrix/search seed")
    parser.add_argument(
        "--spill-root", default=None,
        help="directory for native spill files (default: a temp dir)",
    )
    parser.add_argument(
        "--chaos-budget", type=float, default=30.0,
        help="seconds each chaos case may take before it counts as a hang",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON object instead of the human-readable report",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the JSON report to FILE (CI artifact)",
    )
    return parser


def _print_corpus(say) -> None:
    say("corpus entries:")
    for name in corpus.entry_names():
        entry = corpus.ENTRIES[name]
        fig6 = "  [+fig6 norand variant]" if entry.fig6_mode else ""
        say(f"  {name:20s} {entry.note}{fig6}")
    say("\nsizings (records):")
    for name in sorted(corpus.SIZINGS):
        sz = corpus.SIZINGS[name]
        say(
            f"  {name:16s} N/P={sz.n_per_rank:<5d} B={sz.block_records:<3d} "
            f"M={sz.memory_records:<4d} {sz.note}"
        )
    say("\nad-hoc sizing names n<N>b<B>m<M> are accepted in replay tokens.")


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    say = (lambda *a, **k: None) if args.json else print
    report: dict = {"command": "conformance", "seed": args.seed, "ok": True}

    if args.list_corpus:
        _print_corpus(say)
        if args.json:
            report["entries"] = {
                n: corpus.ENTRIES[n].note for n in corpus.entry_names()
            }
            report["sizings"] = {
                n: corpus.SIZINGS[n].note for n in sorted(corpus.SIZINGS)
            }
            print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    if not any((args.quick, args.full, args.chaos, args.search, args.replay,
                args.recover_smoke, args.service_smoke, args.service_chaos)):
        args.quick = True  # bare invocation = the quick tier

    failures: List[dict] = []
    t0 = time.time()
    spill_root = args.spill_root
    made_root = False
    if spill_root is None:
        spill_root = tempfile.mkdtemp(prefix="repro-conformance-")
        made_root = True
    else:
        os.makedirs(spill_root, exist_ok=True)

    try:
        # -- differential matrices --------------------------------------------
        specs: List[differential.CaseSpec] = []
        if args.replay:
            try:
                specs.append(differential.CaseSpec.from_token(args.replay))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.quick:
            specs.extend(differential.quick_specs(seed=args.seed))
        if args.full:
            specs.extend(differential.full_specs(seed=args.seed))
        if args.pipelined and specs:
            specs.extend(
                differential.pipelined_variants(
                    [s for s in specs if s.records == "fixed16"]
                )
            )
        extra_transports = {
            "pipe": (),
            "tcp": ("tcp",),
            "shm": ("shm",),
            "both": ("tcp",),
            "all": ("tcp", "shm"),
        }[args.transport]
        if extra_transports and specs:
            # Native-only twins of every (non-pipelined) matrix case over
            # each extra transport: the oracle byte-comparison plus the
            # pipe twin already in the list prove the transport is
            # bitwise-invisible.
            base = [
                s for s in specs
                if "native" in s.backends
                and s.transport == "pipe"
                and not s.pipelined
            ]
            for extra in extra_transports:
                variants = (
                    differential.tcp_variants(base)
                    if extra == "tcp"
                    else differential.shm_variants(base)
                )
                specs.extend(variants)
        if args.recover and specs:
            # Native-only recovery twins: the same workloads with a rank
            # killed at the run-formation boundary and one restart — the
            # resumed sort must still match the oracle byte for byte.
            specs.extend(
                differential.recovery_variants(
                    [
                        s for s in specs
                        if "native" in s.backends
                        and not s.pipelined
                        and not s.recover
                        and s.records == "fixed16"
                    ]
                )
            )
        extra_algos = {
            "canonical": (),
            "striped": ("striped",),
            "guidesort": ("guidesort",),
            "all": ("striped", "guidesort"),
        }[args.algo]
        if extra_algos and specs:
            # Native-only backend twins over every transport already in
            # the list: the identical workloads through the striped
            # and/or guide-sequence data paths, against the same oracle.
            base = [
                s for s in specs
                if "native" in s.backends
                and not s.pipelined
                and not s.recover
                and s.records == "fixed16"
                and s.algo == "canonical"
            ]
            for extra in extra_algos:
                variants = (
                    differential.striped_variants(base)
                    if extra == "striped"
                    else differential.guidesort_variants(base)
                )
                specs.extend(variants)
        if args.strings and specs:
            # Native-only string twins over every transport already in
            # the list: the identical corpus keys, mapped through the
            # order-preserving u64-to-string embedding, sorted as
            # variable-length records against an independent decoded
            # sorted() oracle.
            specs.extend(
                differential.string_variants(
                    [
                        s for s in specs
                        if "native" in s.backends
                        and not s.pipelined
                        and not s.recover
                        and s.records == "fixed16"
                        and s.algo == "canonical"
                    ]
                )
            )
        if specs:
            results = differential.run_specs(specs)
            n_div = 0
            for r in results:
                if not r.ok:
                    n_div += 1
                    failures.append(r.describe())
                    say(f"DIVERGED {r.spec.to_token()} [{r.backend}]")
                    for d in r.divergences:
                        say(f"    {d}")
                    say(f"    replay: {r.spec.replay_command()}")
            say(
                f"differential: {len(specs)} cases x backends = "
                f"{len(results)} runs, {n_div} divergences"
            )
            report["differential"] = {
                "cases": len(specs),
                "runs": len(results),
                "divergences": n_div,
            }

        # -- property search --------------------------------------------------
        if args.search:
            srep = properties.search(n_cases=args.search, seed=args.seed)
            say(
                f"property search: {srep.cases_run} cases, "
                f"{len(srep.failures)} failures"
            )
            for f in srep.failures:
                failures.append(f.describe())
                say(f"FAILED (minimized): {f.minimized.to_token()}")
                for d in f.divergences:
                    say(f"    {d}")
                say(f"    replay: {f.replay}")
            report["search"] = {
                "cases": srep.cases_run,
                "failures": [f.describe() for f in srep.failures],
            }

        # -- chaos sweep -------------------------------------------------------
        if args.chaos:
            transports = ["pipe"] + list(extra_transports)
            if args.keep_failures:
                os.makedirs(args.keep_failures, exist_ok=True)
            verdicts = []
            for transport in transports:
                verdicts.extend(
                    chaos.run_chaos_sweep(
                        spill_root, budget=args.chaos_budget,
                        pipelined=args.pipelined,
                        transport=transport,
                        recover=args.recover,
                        keep_failures_dir=args.keep_failures,
                        job_timeout=6.0 if args.recover else 15.0,
                    )
                )
            bad = [v for v in verdicts if not v["ok"]]
            for v in verdicts:
                flag = "ok  " if v["ok"] else "FAIL"
                say(f"chaos {flag} {v['fault']:38s} {v['elapsed']:6.2f}s")
            if bad:
                failures.extend(bad)
            say(f"chaos: {len(verdicts)} kill points, {len(bad)} failures")
            report["chaos"] = {
                "points": len(verdicts),
                "failures": len(bad),
                "recover": args.recover,
                "verdicts": verdicts,
            }

        # -- recovery smoke ----------------------------------------------------
        if args.recover_smoke:
            verdicts = chaos.run_recovery_smoke(spill_root)
            bad = [v for v in verdicts if not v["ok"]]
            for v in verdicts:
                flag = "ok  " if v["ok"] else "FAIL"
                say(
                    f"recovery-smoke {flag} {v['fault']:38s} "
                    f"{v['elapsed']:6.2f}s  ({v['outcome']})"
                )
            if bad:
                failures.extend(bad)
            report["recovery_smoke"] = {
                "cases": len(verdicts),
                "failures": len(bad),
                "verdicts": verdicts,
            }

        # -- sort-service modes ------------------------------------------------
        for enabled, key, runner in (
            (args.service_smoke, "service_smoke", chaos.run_service_smoke),
            (args.service_chaos, "service_chaos", chaos.run_service_chaos),
        ):
            if not enabled:
                continue
            verdicts = runner(spill_root)
            bad = [v for v in verdicts if not v["ok"]]
            for v in verdicts:
                flag = "ok  " if v["ok"] else "FAIL"
                say(
                    f"{key.replace('_', '-')} {flag} {v['fault']:38s} "
                    f"{v['elapsed']:6.2f}s  ({v['outcome']})"
                )
            if bad:
                failures.extend(bad)
            report[key] = {
                "cases": len(verdicts),
                "failures": len(bad),
                "verdicts": verdicts,
            }
    finally:
        if made_root:
            import shutil

            shutil.rmtree(spill_root, ignore_errors=True)

    report["ok"] = not failures
    report["failures"] = failures
    report["elapsed_s"] = round(time.time() - t0, 2)
    say(f"\nconformance {'PASSED' if not failures else 'FAILED'} "
        f"in {report['elapsed_s']}s")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
