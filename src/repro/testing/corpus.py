"""The adversarial workload corpus: named, seeded, deterministic inputs.

External sorters break on *boundaries*: run boundaries, memory-budget
boundaries, block boundaries, and key distributions that defeat the
randomization arguments (paper Fig. 6; Bender et al., *Run Generation
Revisited*; Arge & Thorup, *RAM-Efficient External Memory Sorting*).
This corpus packages exactly those inputs as ``(name, seed, generator)``
triples so every test tier — the tier-1 pruned matrix, the nightly full
matrix, the property-based search, and the ``conformance`` CLI — draws
from one shared, replayable vocabulary.

Two orthogonal axes:

* **entries** (:data:`ENTRIES`) fix the *key distribution* per rank;
* **sizings** (:data:`SIZINGS`) fix the *record counts* relative to the
  memory budget M and block size B — ``N = M ± 1`` record, counts
  straddling a block boundary, the single-run N ≤ M regime, and a
  many-run configuration close to the two-pass N = O(M²/B) limit.

Everything is a pure function of ``(name, n, rank, n_ranks, seed)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from ..workloads.gensort import record_keys

__all__ = [
    "CorpusEntry",
    "Sizing",
    "ENTRIES",
    "SIZINGS",
    "generate",
    "entry_names",
    "resolve_sizing",
    "sizing_feasible",
    "quick_matrix",
    "full_matrix",
]

#: Key domain ceiling shared with the sim workload generators.
_KEY_HIGH = np.uint64(2 ** 63)


def _rng(seed: int, rank: int, name: str) -> np.random.Generator:
    tag = int.from_bytes(name.encode()[:8].ljust(8, b"\0"), "little")
    return np.random.default_rng((seed, tag, rank))


# ---------------------------------------------------------------- generators
# Signature: gen(n, rank, n_ranks, seed) -> uint64 key array of length n.


def _uniform(n, rank, n_ranks, seed):
    """Uniform random keys — the control case (paper's random input)."""
    return _rng(seed, rank, "uniform").integers(0, _KEY_HIGH, n, dtype=np.uint64)


def _dup_all(n, rank, n_ranks, seed):
    """One single key value everywhere: every comparison is a tie."""
    return np.full(n, 42, dtype=np.uint64)


def _dup_tiny_domain(n, rank, n_ranks, seed):
    """Seven distinct keys: duplicate-heavy, exercises exact tie-breaks."""
    return _rng(seed, rank, "dup_tiny").integers(0, 7, n, dtype=np.uint64)


def _slice_bounds(index: int, n_ranks: int) -> Tuple[int, int]:
    width = int(_KEY_HIGH)
    return index * width // n_ranks, (index + 1) * width // n_ranks


def _presorted(n, rank, n_ranks, seed):
    """Globally sorted input: rank r holds the r-th key slice, sorted."""
    lo, hi = _slice_bounds(rank, n_ranks)
    return np.sort(_rng(seed, rank, "presorted").integers(lo, hi, n, dtype=np.uint64))


def _reversed_global(n, rank, n_ranks, seed):
    """Globally reverse sorted: every record must cross the machine."""
    lo, hi = _slice_bounds(n_ranks - 1 - rank, n_ranks)
    keys = np.sort(_rng(seed, rank, "reversed").integers(lo, hi, n, dtype=np.uint64))
    return keys[::-1].copy()


def _fig6_local_sorted(n, rank, n_ranks, seed):
    """Fig. 6 worst case: each rank's input is locally sorted, so without
    randomized run formation the r-th chunk of every rank covers a thin
    global key slice and (almost) everything moves in the all-to-all."""
    return np.sort(_rng(seed, rank, "fig6").integers(0, _KEY_HIGH, n, dtype=np.uint64))


def _staircase(n, rank, n_ranks, seed):
    """Staircase plateaus: rank-local keys rise in duplicate plateaus of
    32 records — locally sorted *and* duplicate-heavy, the combination
    that defeats non-randomized run formation and stresses splitter
    tie-breaking at the same time."""
    plateau = 32
    steps = (np.arange(n, dtype=np.uint64) // np.uint64(plateau))
    return steps * np.uint64(n_ranks) + np.uint64(rank)


def _zipf(n, rank, n_ranks, seed):
    """Heavy-tailed (Pareto/Zipf-flavoured) skew: most mass near zero."""
    raw = _rng(seed, rank, "zipf").pareto(1.1, n)
    return np.minimum(raw * 1e15, float(_KEY_HIGH) - 1).astype(np.uint64)


def _gensort(n, rank, n_ranks, seed):
    """The gensort-compatible deterministic keys (Indy-style uniform)."""
    return record_keys(rank * n, n, seed=seed)


def _gensort_dup(n, rank, n_ranks, seed):
    """Gensort's duplicate-heavy Daytona-like distribution."""
    return record_keys(rank * n, n, seed=seed, skew=True)


@dataclass(frozen=True)
class CorpusEntry:
    """One adversarial key distribution, deterministic per (seed, rank)."""

    name: str
    make: Callable[[int, int, int, int], np.ndarray]
    #: Run the Fig.-6 configuration (randomize=False) for this entry too.
    fig6_mode: bool = False
    note: str = ""


ENTRIES: Dict[str, CorpusEntry] = {
    e.name: e
    for e in [
        CorpusEntry("uniform", _uniform, note="control case"),
        CorpusEntry("dup_all", _dup_all, note="all comparisons tie"),
        CorpusEntry("dup_tiny_domain", _dup_tiny_domain, note="7 distinct keys"),
        CorpusEntry("presorted", _presorted, note="already globally sorted"),
        CorpusEntry("reversed", _reversed_global, note="globally reverse sorted"),
        CorpusEntry("fig6_local_sorted", _fig6_local_sorted, fig6_mode=True,
                    note="locally sorted; worst case for non-randomized runs"),
        CorpusEntry("staircase", _staircase, fig6_mode=True,
                    note="locally sorted duplicate plateaus"),
        CorpusEntry("zipf", _zipf, note="heavy-tailed key skew"),
        CorpusEntry("gensort", _gensort, note="gensort-compatible seeds"),
        CorpusEntry("gensort_dup", _gensort_dup, note="Daytona-like duplicates"),
    ]
}


def entry_names() -> List[str]:
    return sorted(ENTRIES)


def generate(name: str, n: int, rank: int, n_ranks: int, seed: int) -> np.ndarray:
    """Rank ``rank``'s keys for corpus entry ``name`` — pure and seeded."""
    if name not in ENTRIES:
        raise ValueError(f"unknown corpus entry {name!r}; choose from {entry_names()}")
    if n < 0:
        raise ValueError(f"negative record count {n}")
    keys = np.ascontiguousarray(ENTRIES[name].make(n, rank, n_ranks, seed),
                                dtype=np.uint64)
    if len(keys) != n:
        raise AssertionError(f"corpus entry {name} produced {len(keys)} != {n} keys")
    return keys


# ------------------------------------------------------------------- sizings


@dataclass(frozen=True)
class Sizing:
    """Record counts relative to the memory budget M and block size B.

    All quantities are in *records* (16 bytes each for the native
    backend).  ``memory_records`` is the per-worker budget M; the native
    backend sizes one run chunk at M/3 records, so the run count R
    follows from ``n_per_rank`` and these two numbers.
    """

    name: str
    n_per_rank: int
    block_records: int
    memory_records: int
    note: str = ""


SIZINGS: Dict[str, Sizing] = {
    s.name: s
    for s in [
        # Baseline: R = 4 runs of M/3 = 128 records each.
        Sizing("base", 512, 32, 384, "multi-run baseline"),
        # The memory-budget boundary: one record less / more than M.
        Sizing("m_minus_1", 383, 32, 384, "N = M - 1 record"),
        Sizing("m_plus_1", 385, 32, 384, "N = M + 1 record"),
        # The block boundary: one record less / more than a whole block.
        Sizing("block_minus_1", 255, 32, 384, "N = 8B - 1 record"),
        Sizing("block_plus_1", 257, 32, 384, "N = 8B + 1 record"),
        # N <= M: the single-run regime (no selection/redistribution work).
        Sizing("single_run", 128, 32, 384, "one run: N <= M/3 chunk"),
        # Many runs: close to the two-pass N = O(M^2/B) merge limit.
        Sizing("many_runs", 2048, 8, 384, "R = 16 runs near the 2-pass limit"),
    ]
}


_AD_HOC = re.compile(r"^n(\d+)b(\d+)m(\d+)$")


def resolve_sizing(name: str) -> Sizing:
    """A named sizing, or an ad-hoc ``n<N>b<B>m<M>`` one (records each).

    The ad-hoc form is what the property-based search emits, so a
    minimized failure's replay token stays self-contained: the sizing is
    spelled out inside the token instead of pointing at a registry entry.
    """
    if name in SIZINGS:
        return SIZINGS[name]
    match = _AD_HOC.match(name)
    if match is None:
        raise ValueError(
            f"unknown sizing {name!r}: not in {sorted(SIZINGS)} and not "
            "of the ad-hoc n<N>b<B>m<M> form"
        )
    n, b, m = (int(g) for g in match.groups())
    return Sizing(name, n, b, m, "ad-hoc (property search)")


def ad_hoc_name(n_per_rank: int, block_records: int, memory_records: int) -> str:
    return f"n{n_per_rank}b{block_records}m{memory_records}"


def sizing_feasible(sizing: Sizing, record_bytes: int = 16) -> bool:
    """Would both backends accept this sizing?  Mirrors the feasibility
    checks of :class:`repro.native.job.NativeJob` (the merge-buffer
    two-pass limit with the M/3 run chunk) and the simulator's
    ``SortConfig.validate`` (R ≤ memory blocks, ≥ 2 keys per block)."""
    n, b, m = sizing.n_per_rank, sizing.block_records, sizing.memory_records
    if n < 1 or b < 2 or m < b:
        return False
    input_blocks = -(-n // b)
    # Native: run chunk is M/3 worth of blocks.
    piece_native = max(1, (m * record_bytes // 3) // (b * record_bytes))
    runs_native = max(1, -(-input_blocks // piece_native))
    chunk = piece_native * b
    if (runs_native * 2 + 4) * b * record_bytes > (m + chunk) * record_bytes:
        return False
    # Sim: run piece is the full memory in blocks.
    piece_sim = max(1, m // b)
    runs_sim = max(1, -(-input_blocks // piece_sim))
    return runs_sim <= piece_sim


# -------------------------------------------------------------- the matrices


def quick_matrix() -> List[Tuple[str, str]]:
    """The pruned tier-1 matrix: ≤ 8 (entry, sizing) cases, small N.

    One representative of each adversary family, plus the two
    memory-budget boundary sizings on the control distribution.
    """
    return [
        ("uniform", "base"),
        ("dup_all", "base"),
        ("staircase", "base"),
        ("presorted", "base"),
        ("reversed", "base"),
        ("zipf", "base"),
        ("gensort_dup", "m_plus_1"),
        ("uniform", "m_minus_1"),
    ]


def full_matrix() -> List[Tuple[str, str]]:
    """The nightly matrix: every entry × every sizing."""
    return [
        (entry, sizing)
        for entry in entry_names()
        for sizing in sorted(SIZINGS)
    ]


def iter_cases(matrix: Iterable[Tuple[str, str]]):
    """Resolve (entry-name, sizing-name) pairs to corpus objects."""
    for entry_name, sizing_name in matrix:
        yield ENTRIES[entry_name], SIZINGS[sizing_name]
