"""Differential conformance: sim backend vs native backend vs ``np.sort``.

One :class:`CaseSpec` pins *everything* — corpus entry, sizing, worker
count, seed, randomization, selection strategy — so a failing case is a
replayable token (``python -m repro conformance --replay <token>``).
Each case feeds the identical per-rank key arrays to:

* the **native** backend (real worker processes, real files, real pipes),
* the **sim** backend (the discrete-event cluster model), and
* the **oracle** — ``np.sort`` of the concatenated input, cut at the
  paper's canonical boundaries ``i·N/P`` (:mod:`repro.testing.oracle`).

Both backends must reproduce the oracle's per-rank key sequences
*byte-identically*, match its order-independent checksum, and satisfy
the conservation invariant (every phase moves exactly N·16 bytes through
the block store).  The native backend additionally proves payload
integrity: the output payload column is a permutation of the global
input indices and every (key, payload) pair round-trips.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import corpus, oracle

__all__ = [
    "CaseSpec",
    "CaseResult",
    "specs_for_matrix",
    "quick_specs",
    "full_specs",
    "pipelined_variants",
    "tcp_variants",
    "recovery_variants",
    "string_variants",
    "striped_variants",
    "guidesort_variants",
    "run_case",
    "run_sim_case",
    "run_native_case",
    "run_specs",
]

_MASK = 0xFFFFFFFFFFFFFFFF

#: Everything a native worker may legitimately read/write besides the
#: conserved data stream, keyed by phase tag.
_CONSERVED_NATIVE = {
    # phase tag     -> (reads must sum to N*16, writes must sum to N*16)
    "run_formation": (True, True),   # reads input, writes run pieces
    "all_to_all": (True, True),      # reads pieces, writes segments
    "merge": (True, True),           # reads segments, writes output
}


def _check_striped_conservation(workers, nbytes: int) -> List[str]:
    """The striped backend's own conservation profile.

    Striping moves the data in *two* exchanges instead of canonical's
    one: run formation stripe-writes every record exactly once (wire
    volume exactly N·16), the merge re-sorts and places every record
    (wire volume at least 2·N·16 — resends of not-yet-final records push
    it higher), and the selection / all-to-all slots move nothing at
    all.  Disk conservation still holds per pass: run formation and
    merge each read and write exactly N·16 bytes.
    """
    issues: List[str] = []

    def io(phase):
        return (
            sum(w.bytes_read.get(phase, 0) for w in workers),
            sum(w.bytes_written.get(phase, 0) for w in workers),
        )

    def wire(phase):
        return sum(
            w.comm_wire_sent.get(phase, 0) + w.comm_local_bytes.get(phase, 0)
            for w in workers
        )

    for phase in ("run_formation", "merge"):
        got_r, got_w = io(phase)
        if got_r != nbytes:
            issues.append(
                f"striped conservation: {phase} read {got_r} bytes, "
                f"want exactly N*16 = {nbytes}"
            )
        if got_w != nbytes:
            issues.append(
                f"striped conservation: {phase} wrote {got_w} bytes, "
                f"want exactly N*16 = {nbytes}"
            )
    for phase in ("selection", "all_to_all"):
        got_r, got_w = io(phase)
        if got_r or got_w:
            issues.append(
                f"striped conservation: {phase} moved {got_r}+{got_w} "
                "bytes through the block store, want 0 (planning only)"
            )
        vol = wire(phase)
        if vol:
            issues.append(
                f"striped conservation: {phase} wire volume {vol}, want 0"
            )
    vol = wire("run_formation")
    if vol != nbytes:
        issues.append(
            f"striped conservation: run_formation wire volume {vol}, want "
            f"exactly N*16 = {nbytes} (every record stripe-written once)"
        )
    vol = wire("merge")
    if vol < 2 * nbytes:
        issues.append(
            f"striped conservation: merge wire volume {vol} < 2*N*16 = "
            f"{2 * nbytes} (sort exchange + placement both move every "
            "record — the amplification canonical avoids)"
        )
    return issues


@dataclass(frozen=True)
class CaseSpec:
    """One fully pinned conformance case (replayable from its token)."""

    entry: str
    sizing: str
    n_workers: int = 2
    seed: int = 42
    randomize: bool = True
    selection: str = "sampled"
    backends: Tuple[str, ...] = ("native", "sim")
    #: Run the native backend with the pipelined I/O layer on (read-ahead
    #: + write-behind).  The oracle comparison is unchanged — pipelining
    #: must be bitwise-invisible.
    pipelined: bool = False
    #: Native interconnect substrate ("pipe" or "tcp").  The oracle
    #: comparison is unchanged — the transport must be bitwise-invisible.
    transport: str = "pipe"
    #: Run the native backend as a *recovery twin*: a chaos kill at a
    #: phase boundary plus ``max_restarts=1``, so the sort survives one
    #: rank death and resumes from its manifests.  The oracle comparison
    #: is unchanged — recovery must be bitwise-invisible.
    recover: bool = False
    #: Native record model.  ``"string"`` maps each corpus key through
    #: the order-preserving :func:`~repro.native.records.string_key_from_u64`
    #: and sorts the variable-length records; the oracle becomes an
    #: independent Python ``sorted()`` of the decoded byte strings.
    records: str = "fixed16"
    #: Native sort backend (:mod:`repro.native.algos`).  Every backend
    #: must reproduce the oracle byte-identically; only the conservation
    #: profile differs (striped asserts its own wire/IO bounds).
    algo: str = "canonical"
    #: String workload family (:data:`~repro.native.records.STRING_FAMILIES`):
    #: ``"hex"`` is the synthetic hex-prefixed map, ``"url"`` and ``"log"``
    #: are the real-workload shapes (web-crawl URLs, timestamped log
    #: lines).  Only meaningful with ``records="string"``.
    string_family: str = "hex"

    def __post_init__(self):
        if self.entry not in corpus.ENTRIES:
            raise ValueError(f"unknown corpus entry {self.entry!r}")
        corpus.resolve_sizing(self.sizing)  # raises on an unknown name
        for backend in self.backends:
            if backend not in ("native", "sim"):
                raise ValueError(f"unknown backend {backend!r}")
        if self.transport not in ("pipe", "tcp", "shm"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.records not in ("fixed16", "string"):
            raise ValueError(f"unknown record model {self.records!r}")
        if self.records != "fixed16":
            if "sim" in self.backends:
                raise ValueError("string cases run the native backend only")
            if self.pipelined or self.recover:
                raise ValueError(
                    "string cases support neither pipelined I/O nor "
                    "recovery yet (NativeJob rejects both)"
                )
        from ..native.records import STRING_FAMILIES

        if self.string_family not in STRING_FAMILIES:
            raise ValueError(
                f"unknown string family {self.string_family!r}; choose "
                f"from {sorted(STRING_FAMILIES)}"
            )
        if self.string_family != "hex" and self.records != "string":
            raise ValueError(
                f"string family {self.string_family!r} requires "
                'records="string"'
            )
        if self.algo not in ("canonical", "striped", "guidesort"):
            raise ValueError(f"unknown algorithm {self.algo!r}")
        if self.algo != "canonical":
            if "sim" in self.backends:
                raise ValueError(
                    "non-canonical algo cases run the native backend only"
                )
            if self.records != "fixed16":
                raise ValueError(
                    f"algo {self.algo!r} only supports fixed16 records yet"
                )
            if self.pipelined or self.recover:
                raise ValueError(
                    f"algo {self.algo!r} supports neither pipelined I/O "
                    "nor recovery yet (NativeJob rejects both)"
                )

    # -- replay tokens --------------------------------------------------------

    def to_token(self) -> str:
        """Compact replay token, e.g. ``uniform:base:p2:s42:rand:sampled``."""
        rand = "rand" if self.randomize else "norand"
        token = f"{self.entry}:{self.sizing}:p{self.n_workers}:s{self.seed}:{rand}:{self.selection}"
        if self.backends != ("native", "sim"):
            token += ":" + "+".join(self.backends)
        if self.pipelined:
            token += ":pipe"
        if self.transport != "pipe":
            token += f":{self.transport}"
        if self.recover:
            token += ":recover"
        if self.records != "fixed16":
            token += (
                ":str" if self.string_family == "hex"
                else f":str-{self.string_family}"
            )
        if self.algo == "striped":
            token += ":striped"
        elif self.algo == "guidesort":
            token += ":guide"
        return token

    @classmethod
    def from_token(cls, token: str) -> "CaseSpec":
        parts = token.strip().split(":")
        if len(parts) < 6:
            raise ValueError(
                f"bad replay token {token!r}: want "
                "entry:sizing:p<P>:s<seed>:rand|norand:selection"
                "[:backends][:pipe][:tcp|:shm][:recover]"
                "[:str|:str-url|:str-log][:striped|:guide]"
            )
        entry, sizing, p, s, rand, selection = parts[:6]
        if not p.startswith("p") or not s.startswith("s"):
            raise ValueError(f"bad replay token {token!r}: p/s fields malformed")
        backends: Tuple[str, ...] = ("native", "sim")
        pipelined = False
        transport = "pipe"
        recover = False
        records = "fixed16"
        algo = "canonical"
        string_family = "hex"
        for part in parts[6:]:
            if part == "pipe":
                pipelined = True
            elif part in ("tcp", "shm"):
                transport = part
            elif part == "recover":
                recover = True
            elif part == "str":
                records = "string"
            elif part.startswith("str-"):
                records = "string"
                string_family = part[len("str-"):]
            elif part == "striped":
                algo = "striped"
            elif part == "guide":
                algo = "guidesort"
            else:
                backends = tuple(part.split("+"))
        return cls(
            entry=entry,
            sizing=sizing,
            n_workers=int(p[1:]),
            seed=int(s[1:]),
            randomize=(rand == "rand"),
            selection=selection,
            backends=backends,
            pipelined=pipelined,
            transport=transport,
            recover=recover,
            records=records,
            algo=algo,
            string_family=string_family,
        )

    def replay_command(self) -> str:
        return f"python -m repro conformance --replay {self.to_token()}"

    # -- derived --------------------------------------------------------------

    @property
    def sizing_obj(self) -> corpus.Sizing:
        return corpus.resolve_sizing(self.sizing)

    def input_parts(self) -> List[np.ndarray]:
        """The per-rank key arrays this case sorts (pure, seeded)."""
        n = self.sizing_obj.n_per_rank
        return [
            corpus.generate(self.entry, n, rank, self.n_workers, self.seed)
            for rank in range(self.n_workers)
        ]


@dataclass
class CaseResult:
    """Outcome of one case on one backend."""

    spec: CaseSpec
    backend: str
    divergences: List[str] = field(default_factory=list)
    checksum: int = 0
    total_records: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> Dict[str, object]:
        return {
            "token": self.spec.to_token(),
            "backend": self.backend,
            "ok": self.ok,
            "divergences": list(self.divergences),
            "total_records": self.total_records,
            "checksum": f"{self.checksum:#018x}",
            "replay": self.spec.replay_command(),
        }


# ---------------------------------------------------------------- spec lists


def specs_for_matrix(
    matrix: Sequence[Tuple[str, str]],
    n_workers: int = 2,
    seed: int = 42,
    fig6_variants: bool = True,
    backends: Tuple[str, ...] = ("native", "sim"),
) -> List[CaseSpec]:
    """Expand (entry, sizing) pairs to pinned specs.

    Entries flagged ``fig6_mode`` additionally run with ``randomize=False``
    (the paper's Figure 6 configuration) when ``fig6_variants`` is set —
    the adversarial inputs were built for exactly that regime.
    """
    specs: List[CaseSpec] = []
    for entry_name, sizing_name in matrix:
        base = CaseSpec(
            entry=entry_name,
            sizing=sizing_name,
            n_workers=n_workers,
            seed=seed,
            backends=backends,
        )
        specs.append(base)
        if fig6_variants and corpus.ENTRIES[entry_name].fig6_mode:
            specs.append(replace(base, randomize=False))
    return specs


def quick_specs(seed: int = 42) -> List[CaseSpec]:
    """The tier-1 pruned matrix (8 cases + fig6 variant, small N, P=2)."""
    return specs_for_matrix(corpus.quick_matrix(), n_workers=2, seed=seed)


def full_specs(seed: int = 42) -> List[CaseSpec]:
    """The nightly matrix: every entry × sizing, P=3, fig6 variants."""
    return specs_for_matrix(corpus.full_matrix(), n_workers=3, seed=seed)


def pipelined_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only pipelined twins of ``specs`` (read-ahead + write-behind).

    The sim backend has no pipelined I/O layer, so the twins run native
    only; the oracle byte-comparison is what proves the pipelined path
    produces the identical output the synchronous path (already in
    ``specs``) produced, and the cross-checksum in :func:`run_case`
    binds the two together.
    """
    return [
        replace(spec, backends=("native",), pipelined=True) for spec in specs
    ]


def tcp_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only TCP twins of ``specs`` (the socket transport).

    The oracle byte-comparison proves the TCP mesh delivers the
    identical output the pipe mesh produced, and the cross-checksum in
    :func:`run_case` binds the two together.
    """
    return [
        replace(spec, backends=("native",), transport="tcp") for spec in specs
    ]


def shm_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only shared-memory twins of ``specs`` (the shm rings).

    The oracle byte-comparison proves the zero-copy ring mesh delivers
    the identical output the pipe mesh produced, and the cross-checksum
    in :func:`run_case` binds the two together.
    """
    return [
        replace(spec, backends=("native",), transport="shm") for spec in specs
    ]


#: Deterministic family rotation for :func:`string_variants` — the
#: synthetic hex map plus the real-workload URL and log-line corpora.
STRING_FAMILY_CYCLE = ("hex", "url", "log")


def string_variants(
    specs: Sequence[CaseSpec],
    families: Sequence[str] = STRING_FAMILY_CYCLE,
) -> List[CaseSpec]:
    """Native-only string twins of ``specs`` (variable-length records).

    Each twin maps the corpus's u64 keys through an order- and
    duplicate-preserving u64-to-bytes embedding
    (:data:`~repro.native.records.STRING_FAMILIES`) and sorts the
    resulting length-prefixed records.  The oracle is an *independent*
    Python ``sorted()`` of the decoded byte strings cut at the canonical
    ``i*N/P`` boundaries — so every corpus distribution (duplicates,
    staircases, adversarial splits) re-exercises the byte-rank selection
    and the LCP-compressed exchange.

    Twins cycle deterministically through ``families`` (synthetic hex,
    URL-like, log-line), so any slice of three or more specs covers all
    the corpus's string shapes without multiplying the case count.
    """
    eligible = [
        spec for spec in specs
        if not spec.pipelined and not spec.recover
        and spec.records == "fixed16" and spec.algo == "canonical"
    ]
    return [
        replace(
            spec,
            backends=("native",),
            records="string",
            string_family=families[i % len(families)],
        )
        for i, spec in enumerate(eligible)
    ]


def striped_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only striped-mergesort twins of ``specs``.

    Each twin sorts the identical workload with the globally striped
    backend (:mod:`repro.native.algos.striped`): runs striped block-wise
    over all PEs, merge by collective batch re-sort.  The oracle
    byte-comparison proves the striped data path converges to the same
    canonical balanced output; the conservation check switches to the
    striped wire profile (run-formation wire exactly N·16, merge wire at
    least 2·N·16, the all-to-all slot empty).
    """
    return [
        replace(spec, backends=("native",), algo="striped")
        for spec in specs
        if not spec.pipelined and not spec.recover
        and spec.records == "fixed16" and spec.algo == "canonical"
    ]


def guidesort_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only Guidesort twins of ``specs``.

    Each twin keeps canonical phases 1–3 and swaps the merge for the
    deterministic guide-sequence pass
    (:mod:`repro.native.algos.guidesort`); conservation invariants are
    canonical's, byte for byte.
    """
    return [
        replace(spec, backends=("native",), algo="guidesort")
        for spec in specs
        if not spec.pipelined and not spec.recover
        and spec.records == "fixed16" and spec.algo == "canonical"
    ]


def recovery_variants(specs: Sequence[CaseSpec]) -> List[CaseSpec]:
    """Native-only recovery twins of ``specs`` (kill + resume).

    Each twin runs the identical workload with a chaos kill at the
    run-formation boundary and ``max_restarts=1``: the sort must survive
    the death, resume from its manifests, and still agree *bitwise* with
    the ``np.sort`` oracle — recovery leaves no fingerprints on the
    output.
    """
    return [
        replace(spec, backends=("native",), recover=True) for spec in specs
    ]


# ------------------------------------------------------------------ backends


def _config_for(spec: CaseSpec):
    """The SortConfig both backends share: record-literal sizing.

    ``block_elems == block_records`` makes one simulated key stand for
    one real 16-byte record, so the sim and the native backend interpret
    the identical config identically.
    """
    from ..core.config import SortConfig

    sz = spec.sizing_obj
    rb = 16
    return SortConfig(
        data_per_node_bytes=sz.n_per_rank * rb,
        memory_bytes=sz.memory_records * rb,
        block_bytes=sz.block_records * rb,
        block_elems=sz.block_records,
        randomize=spec.randomize,
        selection=spec.selection,
        seed=spec.seed,
    )


def _compare_to_oracle(
    outputs: Sequence[np.ndarray], expect: Sequence[np.ndarray], backend: str
) -> List[str]:
    """Byte-identical per-rank comparison against the oracle slices."""
    issues: List[str] = []
    for rank, (got, want) in enumerate(zip(outputs, expect)):
        got = np.asarray(got, dtype=np.uint64)
        if len(got) != len(want):
            issues.append(
                f"{backend}: rank {rank} holds {len(got)} records, "
                f"canonical share is {len(want)}"
            )
            continue
        if not np.array_equal(got, want):
            bad = int(np.flatnonzero(got != want)[0])
            issues.append(
                f"{backend}: rank {rank} diverges from np.sort oracle at "
                f"record {bad}: got {int(got[bad])}, want {int(want[bad])}"
            )
    return issues


def run_native_case(spec: CaseSpec, workdir: Optional[str] = None) -> CaseResult:
    """One case through the native backend, checked against the oracle."""
    from ..native import NativeJob, NativeSorter
    from ..native.records import NATIVE_DTYPE, RECORD_BYTES, make_records

    if spec.records != "fixed16":
        return _run_native_string_case(spec, workdir=workdir)

    parts = spec.input_parts()
    expect = oracle.expected_outputs(parts)
    want_checksum = oracle.multiset_checksum(np.concatenate(parts))
    n = spec.sizing_obj.n_per_rank
    total = n * spec.n_workers
    result = CaseResult(spec=spec, backend="native", total_records=total)

    own_dir = workdir is None
    spill = workdir or tempfile.mkdtemp(prefix="repro-conf-")
    try:
        os.makedirs(spill, exist_ok=True)
        # Pre-write the inputs: payload = global input index, so the
        # output can be traced back to the exact input permutation.
        for rank, keys in enumerate(parts):
            payloads = np.arange(rank * n, rank * n + n, dtype=np.uint64)
            make_records(keys, payloads).tofile(
                os.path.join(spill, f"input_{rank}.dat")
            )
        chaos = None
        if spec.recover:
            from .chaos import ChaosSpec

            chaos = ChaosSpec(rank=0, kill_at="after:run_formation")
        job = NativeJob(
            config=_config_for(spec),
            n_workers=spec.n_workers,
            spill_dir=spill,
            generate=False,
            timeout=120.0,
            transport=spec.transport,
            prefetch_blocks=4 if spec.pipelined else 0,
            write_behind_blocks=4 if spec.pipelined else 0,
            chaos=chaos,
            max_restarts=1 if spec.recover else 0,
            algo=spec.algo,
        )
        sort = NativeSorter(job).run()

        if spec.recover:
            rec = sort.stats.recovery_dict()
            if sort.stats.restarts != 1:
                result.divergences.append(
                    f"native recover: expected exactly 1 restart, got "
                    f"{sort.stats.restarts} (the kill never fired?)"
                )
            if rec["rf_blocks_reread"] != 0:
                result.divergences.append(
                    f"native recover: {rec['rf_blocks_reread']:.0f} "
                    "run-formation blocks re-read on resume; the o(N) "
                    "recovery bound requires 0 for a boundary kill"
                )

        result.checksum = sort.input_checksum
        if sort.input_checksum != want_checksum:
            result.divergences.append(
                f"native: streamed input checksum {sort.input_checksum:#x} "
                f"!= oracle {want_checksum:#x}"
            )
        report = sort.validate()
        if not report.ok:
            result.divergences.extend(f"native validate: {i}" for i in report.issues)
        result.divergences.extend(
            _compare_to_oracle(sort.output_keys(), expect, "native")
        )

        # Payload integrity: the output must be a permutation of the
        # input, pair-exact.
        keys_in = np.concatenate(parts)
        recs = [
            np.fromfile(meta.path, dtype=NATIVE_DTYPE) for meta in sort.outputs
        ]
        payloads = np.concatenate([r["payload"] for r in recs]) if recs else []
        if len(payloads) == total:
            if not np.array_equal(np.sort(payloads), np.arange(total, dtype=np.uint64)):
                result.divergences.append(
                    "native: output payloads are not a permutation of the "
                    "global input indices"
                )
            else:
                out_keys = np.concatenate([r["key"] for r in recs])
                if not np.array_equal(keys_in[payloads], out_keys):
                    result.divergences.append(
                        "native: some output record's (key, payload) pair "
                        "does not round-trip to the input"
                    )

        # Conservation: every conserved phase moved exactly N·record_bytes
        # through the block store, summed over the workers.  The striped
        # backend asserts its own profile (two exchanges, empty
        # all-to-all slot); canonical and guidesort share the canonical
        # one.
        nbytes = total * RECORD_BYTES
        if spec.algo == "striped":
            result.divergences.extend(
                _check_striped_conservation(sort.stats.workers, nbytes)
            )
        for phase, (check_r, check_w) in (
            {} if spec.algo == "striped" else _CONSERVED_NATIVE
        ).items():
            if spec.recover and phase == "run_formation":
                # The resumed epoch restores its runs from the manifest:
                # by design it re-reads zero input bytes, so conservation
                # holds for the *lineage*, not the reported final epoch.
                continue
            got_r = sum(w.bytes_read.get(phase, 0) for w in sort.stats.workers)
            got_w = sum(w.bytes_written.get(phase, 0) for w in sort.stats.workers)
            if check_r and got_r != nbytes:
                result.divergences.append(
                    f"native conservation: {phase} read {got_r} bytes, "
                    f"want exactly N*{RECORD_BYTES} = {nbytes}"
                )
            if check_w and got_w != nbytes:
                result.divergences.append(
                    f"native conservation: {phase} wrote {got_w} bytes, "
                    f"want exactly N*{RECORD_BYTES} = {nbytes}"
                )
    finally:
        if own_dir:
            shutil.rmtree(spill, ignore_errors=True)
    return result


#: The LCP wire-volume counter families every string sort must balance:
#: ``wire == raw + overhead - trimmed``, per phase, exactly.
_LCP_FAMILIES = ("rf_sample", "rf_xchg", "a2a")


def _run_native_string_case(
    spec: CaseSpec, workdir: Optional[str] = None
) -> CaseResult:
    """One *string-model* case through the native backend.

    The corpus keys are mapped through the case's string family — an
    order- and duplicate-preserving u64-to-bytes embedding from
    :data:`~repro.native.records.STRING_FAMILIES`; the oracle is an
    independent Python ``sorted()`` of the decoded byte strings cut at
    the canonical ``i*N/P`` boundaries.  Conservation is
    checked in *encoded* bytes (length prefix + key + payload; the
    ``:index``-tagged sidecar I/O is bookkept separately), and the LCP
    wire counters must balance their volume identity exactly.
    """
    from ..native import NativeJob, NativeSorter
    from ..native.records import (
        VarlenBatch,
        resolve_string_family,
        string_checksum,
        write_varlen_file,
    )

    parts = spec.input_parts()
    n = spec.sizing_obj.n_per_rank
    total = n * spec.n_workers
    result = CaseResult(spec=spec, backend="native", total_records=total)

    key_map = resolve_string_family(spec.string_family)
    keys_in: List[bytes] = [
        key_map(int(v)) for part in parts for v in part
    ]
    input_batch = VarlenBatch.build(keys_in, range(total))
    want_checksum = string_checksum(input_batch)
    nbytes = input_batch.nbytes  # conserved volume, in encoded bytes
    expect = sorted(keys_in)
    bounds = [i * total // spec.n_workers for i in range(spec.n_workers + 1)]

    own_dir = workdir is None
    spill = workdir or tempfile.mkdtemp(prefix="repro-conf-")
    try:
        os.makedirs(spill, exist_ok=True)
        # Pre-write the inputs: payload = global input index, so the
        # output can be traced back to the exact input permutation.
        for rank in range(spec.n_workers):
            write_varlen_file(
                os.path.join(spill, f"input_{rank}.dat"),
                input_batch.slice(rank * n, rank * n + n),
            )
        job = NativeJob(
            config=_config_for(spec),
            n_workers=spec.n_workers,
            spill_dir=spill,
            generate=False,
            timeout=120.0,
            transport=spec.transport,
            records="string",
        )
        sort = NativeSorter(job).run()

        result.checksum = sort.input_checksum
        if sort.input_checksum != want_checksum:
            result.divergences.append(
                f"native str: streamed input checksum "
                f"{sort.input_checksum:#x} != oracle {want_checksum:#x}"
            )
        report = sort.validate()
        if not report.ok:
            result.divergences.extend(
                f"native str validate: {i}" for i in report.issues
            )

        # Byte-identical per-rank comparison against the decoded oracle.
        out_batches = [
            sort.output_records(rank) for rank in range(spec.n_workers)
        ]
        for rank, batch in enumerate(out_batches):
            got = batch.keys()
            want = expect[bounds[rank] : bounds[rank + 1]]
            if len(got) != len(want):
                result.divergences.append(
                    f"native str: rank {rank} holds {len(got)} records, "
                    f"canonical share is {len(want)}"
                )
            elif got != want:
                bad = next(
                    i for i, (g, w) in enumerate(zip(got, want)) if g != w
                )
                result.divergences.append(
                    f"native str: rank {rank} diverges from the decoded "
                    f"sorted() oracle at record {bad}: got {got[bad]!r}, "
                    f"want {want[bad]!r}"
                )

        # Payload integrity: a permutation of the global input indices,
        # and every (key, payload) pair round-trips to the input.
        payloads = [int(p) for b in out_batches for p in b.payloads()]
        if len(payloads) == total:
            if sorted(payloads) != list(range(total)):
                result.divergences.append(
                    "native str: output payloads are not a permutation of "
                    "the global input indices"
                )
            else:
                out_keys = [k for b in out_batches for k in b.keys()]
                if any(
                    keys_in[p] != k for p, k in zip(payloads, out_keys)
                ):
                    result.divergences.append(
                        "native str: some output record's (key, payload) "
                        "pair does not round-trip to the input"
                    )

        # Conservation, in encoded bytes: the offset-index sidecars are
        # charged under their own ":index" tags, so the conserved phase
        # tags must still move exactly the input's encoded volume.
        for phase, (check_r, check_w) in _CONSERVED_NATIVE.items():
            got_r = sum(w.bytes_read.get(phase, 0) for w in sort.stats.workers)
            got_w = sum(
                w.bytes_written.get(phase, 0) for w in sort.stats.workers
            )
            if check_r and got_r != nbytes:
                result.divergences.append(
                    f"native str conservation: {phase} read {got_r} bytes, "
                    f"want exactly the encoded volume {nbytes}"
                )
            if check_w and got_w != nbytes:
                result.divergences.append(
                    f"native str conservation: {phase} wrote {got_w} bytes, "
                    f"want exactly the encoded volume {nbytes}"
                )

        # The LCP identity: per family, wire == raw + overhead - trimmed
        # (it is linear, so it survives summing over workers), and the
        # corpus keys of every family must actually compress somewhere.
        trimmed_total = 0
        for fam in _LCP_FAMILIES:
            sums = {
                kind: sum(
                    w.counters.get(f"{fam}_{kind}_bytes", 0)
                    for w in sort.stats.workers
                )
                for kind in ("raw", "wire", "overhead", "trimmed")
            }
            trimmed_total += sums["trimmed"]
            if sums["wire"] != sums["raw"] + sums["overhead"] - sums["trimmed"]:
                result.divergences.append(
                    f"native str: LCP volume identity broken for {fam}: "
                    f"wire {sums['wire']:.0f} != raw {sums['raw']:.0f} + "
                    f"overhead {sums['overhead']:.0f} - trimmed "
                    f"{sums['trimmed']:.0f}"
                )
        if spec.n_workers > 1 and total > 1 and trimmed_total <= 0:
            result.divergences.append(
                "native str: LCP compression trimmed 0 bytes across every "
                "phase — front coding is not engaging"
            )
    finally:
        if own_dir:
            shutil.rmtree(spill, ignore_errors=True)
    return result


def run_sim_case(spec: CaseSpec) -> CaseResult:
    """One case through the simulator, checked against the oracle.

    Blocks are placed directly (bypassing ``generate_input``) so the sim
    sorts the *identical* per-rank key arrays the native backend sorts —
    including a ragged final block when N is not block-aligned.
    """
    from ..cluster.cluster import Cluster
    from ..core.canonical import CanonicalMergeSort
    from ..em.context import ExternalMemory
    from ..workloads.validation import validate_output

    parts = spec.input_parts()
    expect = oracle.expected_outputs(parts)
    config = _config_for(spec)
    total = sum(len(p) for p in parts)
    result = CaseResult(spec=spec, backend="sim", total_records=total)

    cluster = Cluster(spec.n_workers)
    em = ExternalMemory(cluster, config.block_bytes, config.block_elems)
    be = spec.sizing_obj.block_records
    inputs = []
    for rank, keys in enumerate(parts):
        store = em.store(rank)
        blocks = []
        for start in range(0, len(keys), be):
            bid = store.allocate()
            store.store_without_io(bid, keys[start : start + be])
            blocks.append(bid)
        inputs.append(blocks)

    sort = CanonicalMergeSort(cluster, config).sort(em, inputs)
    outputs = sort.output_keys(em)
    result.checksum = oracle.multiset_checksum(
        np.concatenate(outputs) if outputs else np.empty(0, dtype=np.uint64)
    )
    want_checksum = oracle.multiset_checksum(np.concatenate(parts))
    if result.checksum != want_checksum:
        result.divergences.append(
            f"sim: output checksum {result.checksum:#x} != oracle "
            f"{want_checksum:#x}"
        )
    report = validate_output(parts, outputs, balanced=True)
    if not report.ok:
        result.divergences.extend(f"sim validate: {i}" for i in report.issues)
    result.divergences.extend(_compare_to_oracle(outputs, expect, "sim"))
    return result


def run_case(spec: CaseSpec, workdir: Optional[str] = None) -> List[CaseResult]:
    """One case through every backend the spec names."""
    results: List[CaseResult] = []
    for backend in spec.backends:
        if backend == "native":
            results.append(run_native_case(spec, workdir=workdir))
        else:
            results.append(run_sim_case(spec))
    # Cross-backend: identical checksums (both already byte-checked
    # against the oracle; the checksum check catches a double failure).
    sums = {r.backend: r.checksum for r in results}
    if len(set(sums.values())) > 1:
        results[0].divergences.append(
            f"cross-backend checksum mismatch: "
            + ", ".join(f"{b}={c:#x}" for b, c in sorted(sums.items()))
        )
    return results


def run_specs(
    specs: Sequence[CaseSpec],
    workdir: Optional[str] = None,
    progress=None,
) -> List[CaseResult]:
    """Run a spec list; returns the flat per-backend result list."""
    out: List[CaseResult] = []
    for i, spec in enumerate(specs):
        if progress is not None:
            progress(i, len(specs), spec)
        out.extend(run_case(spec, workdir=workdir))
    return out
