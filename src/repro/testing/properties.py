"""Property-based conformance search with shrink-on-failure.

A lightweight, dependency-free engine in the QuickCheck mold: draw
random-but-seeded :class:`~repro.testing.differential.CaseSpec` values,
run each through the differential harness, and on the first failure
*shrink* — greedily simplify the spec while it keeps failing — so the
reported reproducer is (locally) minimal.  Every result carries the
exact replay command::

    python -m repro conformance --replay <token>

``hypothesis`` is deliberately **not** required; the nightly tests use
it opportunistically (``pytest.importorskip``) for extra generator
diversity, but this module is what the CLI and CI depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from . import corpus
from .differential import CaseResult, CaseSpec, run_case

__all__ = ["PropertyFailure", "SearchReport", "draw_spec", "shrink", "search"]

#: Bounds of the random sizing draw (records).  Small enough that one
#: case runs in well under a second, large enough to cross block, run
#: and memory boundaries.
_N_RANGE = (1, 900)
_BLOCKS = (4, 8, 16, 32, 64)
_MEMORIES = (96, 192, 384, 768)
_WORKERS = (1, 2, 3, 4, 7)


def draw_spec(rng: random.Random, backends: Tuple[str, ...] = ("native", "sim")) -> CaseSpec:
    """One random, feasible, fully pinned case."""
    while True:
        n = rng.randint(*_N_RANGE)
        b = rng.choice(_BLOCKS)
        m = rng.choice(_MEMORIES)
        sizing = corpus.Sizing(corpus.ad_hoc_name(n, b, m), n, b, m)
        if not corpus.sizing_feasible(sizing):
            continue
        entry = rng.choice(sorted(corpus.ENTRIES))
        return CaseSpec(
            entry=entry,
            sizing=sizing.name,
            n_workers=rng.choice(_WORKERS),
            seed=rng.randint(0, 2**31 - 1),
            randomize=(rng.random() < 0.75 or not corpus.ENTRIES[entry].fig6_mode),
            selection=rng.choice(("sampled", "sampled", "basic", "bisect")),
            backends=backends,
        )


@dataclass
class PropertyFailure:
    """A failing case, minimized, with its replay command."""

    original: CaseSpec
    minimized: CaseSpec
    divergences: List[str]
    shrink_steps: int

    @property
    def replay(self) -> str:
        return self.minimized.replay_command()

    def describe(self) -> dict:
        return {
            "original": self.original.to_token(),
            "minimized": self.minimized.to_token(),
            "shrink_steps": self.shrink_steps,
            "divergences": list(self.divergences),
            "replay": self.replay,
        }


@dataclass
class SearchReport:
    """Outcome of one property search."""

    seed: int
    cases_run: int
    failures: List[PropertyFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _fails(spec: CaseSpec) -> Optional[List[str]]:
    """The divergence list if ``spec`` fails, else None.

    A backend crash (not just a divergence) also counts as a failure —
    the shrinker should minimize crashes too, not abort on them.
    """
    try:
        results = run_case(spec)
    except Exception as exc:  # noqa: BLE001 - any backend error is a finding
        return [f"{type(exc).__name__}: {exc}"]
    issues = [d for r in results for d in r.divergences]
    return issues or None


def _candidates(spec: CaseSpec) -> List[CaseSpec]:
    """Simpler variants of ``spec``, most aggressive first.

    Shrink order: fewer workers, then fewer records (halving), then a
    coarser sizing (larger blocks relative to N are simpler to eyeball),
    then the boring entry/selection/randomize defaults.
    """
    out: List[CaseSpec] = []
    sz = spec.sizing_obj

    def with_sizing(n: int, b: int, m: int) -> Optional[CaseSpec]:
        cand = corpus.Sizing(corpus.ad_hoc_name(n, b, m), n, b, m)
        if not corpus.sizing_feasible(cand):
            return None
        return replace(spec, sizing=cand.name)

    if spec.n_workers > 1:
        out.append(replace(spec, n_workers=1))
        out.append(replace(spec, n_workers=spec.n_workers // 2))
        out.append(replace(spec, n_workers=spec.n_workers - 1))
    # Candidate record counts n - d for d = n-1, (n-1)/2, ..., 1: the
    # greedy loop then converges in O(log n) accepted steps instead of
    # decrementing one record at a time.
    delta = sz.n_per_rank - 1
    while delta >= 1:
        cand = with_sizing(
            sz.n_per_rank - delta, sz.block_records, sz.memory_records
        )
        if cand is not None:
            out.append(cand)
        delta //= 2
    if spec.entry != "uniform":
        out.append(replace(spec, entry="uniform"))
    if spec.selection != "sampled":
        out.append(replace(spec, selection="sampled"))
    if not spec.randomize:
        out.append(replace(spec, randomize=True))
    # Dedup, preserving order.
    seen = set()
    uniq = []
    for cand in out:
        token = cand.to_token()
        if token not in seen and token != spec.to_token():
            seen.add(token)
            uniq.append(cand)
    return uniq


def shrink(
    spec: CaseSpec,
    fails: Callable[[CaseSpec], Optional[List[str]]] = _fails,
    max_steps: int = 64,
) -> Tuple[CaseSpec, List[str], int]:
    """Greedy shrink: keep the first simpler variant that still fails.

    Deterministic — the candidate order is fixed — so a given failure
    always minimizes to the same reproducer.  Returns the minimized
    spec, its divergences, and the number of accepted shrink steps.
    """
    issues = fails(spec)
    if issues is None:
        raise ValueError(f"shrink() called on a passing spec {spec.to_token()}")
    steps = 0
    while steps < max_steps:
        for cand in _candidates(spec):
            cand_issues = fails(cand)
            if cand_issues is not None:
                spec, issues = cand, cand_issues
                steps += 1
                break
        else:
            break
    return spec, issues, steps


def search(
    n_cases: int = 25,
    seed: int = 0,
    backends: Tuple[str, ...] = ("native", "sim"),
    stop_on_first: bool = True,
    progress=None,
) -> SearchReport:
    """Run ``n_cases`` random differential cases; shrink any failure."""
    rng = random.Random(seed)
    report = SearchReport(seed=seed, cases_run=0)
    for i in range(n_cases):
        spec = draw_spec(rng, backends=backends)
        if progress is not None:
            progress(i, n_cases, spec)
        report.cases_run += 1
        issues = _fails(spec)
        if issues is None:
            continue
        minimized, min_issues, steps = shrink(spec)
        report.failures.append(
            PropertyFailure(
                original=spec,
                minimized=minimized,
                divergences=min_issues,
                shrink_steps=steps,
            )
        )
        if stop_on_first:
            break
    return report
