"""Deterministic fault injection for the native backend.

The native execution path (``repro.native``) owns real processes, real
pipes and a real spill directory — three substrates with failure modes
the simulator cannot model: a PE can die mid-protocol, a pipe can carry
a torn message, a disk can fill up mid-write.  This module defines the
*specification* of such faults; the native modules expose hook points
(``NativeJob.chaos``) that consult the spec, so the spec travels to the
worker processes by pickling with the job.

The robustness contract being tested is **fail fast, never hang**: any
injected fault must surface as a diagnosable
:class:`~repro.native.driver.NativeSortError` (or a worker-reported
traceback) well inside the job timeout — see ``tests/test_chaos_native.py``
and ``python -m repro conformance --chaos``.

Fault points are named ``"<when>:<phase>"`` with ``when`` in ``before`` /
``after`` and ``phase`` one of the native phases (``generate``,
``run_formation``, ``selection``, ``all_to_all``, ``merge``) plus the
synthetic ``report`` point just before the result is sent.  This module
deliberately imports nothing from :mod:`repro.native` so the dependency
points one way only (native consults testing, never vice versa at import
time).
"""

from __future__ import annotations

import errno
import os
import struct
import time
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "ChaosSpec",
    "ChaosInjected",
    "PHASE_BOUNDARIES",
    "kill_points",
    "run_chaos_case",
    "run_chaos_sweep",
    "run_recovery_smoke",
    "run_service_smoke",
    "run_service_chaos",
]

#: Native phase names, in execution order (mirrors
#: ``repro.native.stats.NATIVE_PHASES`` without importing it).
_NATIVE_PHASES = ("generate", "run_formation", "selection", "all_to_all", "merge")

#: Every phase-boundary fault point, in execution order.
PHASE_BOUNDARIES = tuple(
    f"{when}:{phase}" for phase in _NATIVE_PHASES for when in ("before", "after")
)

#: Exit code of a chaos-killed worker (distinct from crash/terminate codes).
KILL_EXIT_CODE = 77


class ChaosInjected(OSError):
    """Raised inside a worker when a spec injects an I/O fault."""


def kill_points(include_generate: bool = False) -> List[str]:
    """The kill-a-worker sweep: one point per phase boundary."""
    return [
        p for p in PHASE_BOUNDARIES
        if include_generate or not p.endswith(":generate")
    ]


@dataclass
class ChaosSpec:
    """One deterministic fault, bound to a rank and (usually) a point.

    All fields are plain values so the spec pickles into worker processes
    with the :class:`~repro.native.job.NativeJob` that carries it.  At
    most one *terminal* fault fires per run — the point of every scenario
    is to observe how the rest of the system reacts to a single injected
    failure.
    """

    #: Rank the fault applies to (other ranks run clean).
    rank: int = 0
    #: Restart epoch the fault fires on (recovery tests: the fault hits
    #: attempt 0, the resumed attempts run clean).  Workers call
    #: :meth:`set_epoch` with their job's epoch before any hook fires.
    fire_epoch: int = 0

    # -- process death ---------------------------------------------------------
    #: ``os._exit`` at this fault point ("before:selection", ...).
    kill_at: Optional[str] = None
    #: ``os._exit`` after this many all-to-all chunk arrivals — a death
    #: *inside* the exchange, between watermark checkpoints.
    kill_after_a2a_chunks: Optional[int] = None

    # -- result-pipe corruption ------------------------------------------------
    #: At this point, send a truncated pickle on the result pipe, then exit:
    #: the driver's ``recv`` gets a complete frame of garbage bytes.
    torn_result_at: Optional[str] = None
    #: At this point, write a bare message header claiming a large payload
    #: (and no payload) to the result pipe, then exit: a naive driver
    #: blocks forever inside ``Connection.recv``.
    wedged_result_at: Optional[str] = None
    #: At this point, send a *partial* result frame followed by a clean
    #: GOODBYE, then exit.  A torn result must stay an error even when a
    #: polite close rides behind it — the driver may never mistake the
    #: GOODBYE for a deliberate, reportable shutdown.
    goodbye_result_at: Optional[str] = None

    # -- interconnect degradation ---------------------------------------------
    #: Sleep this long at the fault point (a stalled PE; peers must time
    #: out with a diagnosable CommTimeout, the driver must not hang).
    stall_at: Optional[str] = None
    stall_seconds: float = 3600.0
    #: Delay every pipe receive poll on this rank by this much (a slow
    #: link; the sort must still finish correctly).
    recv_delay_s: float = 0.0
    #: Sever the rank's mesh at this point: every channel is closed
    #: abruptly (``comm.sever()``), as if the host lost its network.
    #: Peers must surface CommError (dead peer), never a hang, and the
    #: job must leave no torn output files behind.
    sever_comm_at: Optional[str] = None
    #: Wedge the rank's mesh at this point: a valid message header with
    #: a body that never follows is pushed to every peer
    #: (``comm.wedge()``), then the rank stalls.  Peers must escalate to
    #: CommTimeout via their per-message receive deadline.
    wedge_comm_at: Optional[str] = None

    # -- spill-directory faults ------------------------------------------------
    #: After this many bytes written by the rank's block store, writes
    #: fail with ENOSPC.  The failing write is *torn*: a prefix of the
    #: payload reaches the file first, as a real full disk would leave it.
    enospc_after_bytes: Optional[int] = None
    #: Bytes of the failing write that still reach the file (torn write).
    torn_write_bytes: int = 64

    # -- internal mutable state (per worker process, post-pickle) --------------
    _written: int = 0
    _epoch: int = 0

    # -- hook entry points (called from repro.native) --------------------------

    def set_epoch(self, epoch: int) -> None:
        """Bind this worker's attempt epoch; faults fire on ``fire_epoch`` only."""
        self._epoch = int(epoch)

    def at_point(self, rank: int, point: str, result_conn=None, comm=None) -> None:
        """Phase-boundary hook; called by the worker between phases."""
        if rank != self.rank or self._epoch != self.fire_epoch:
            return
        if self.stall_at == point:
            time.sleep(self.stall_seconds)
        if self.sever_comm_at == point and comm is not None:
            comm.sever()
            # The severed rank idles out of the protocol; its peers'
            # CommError (and the driver's fail-fast) are the test.
            time.sleep(self.stall_seconds)
        if self.wedge_comm_at == point and comm is not None:
            comm.wedge()
            time.sleep(self.stall_seconds)
        if self.torn_result_at == point and result_conn is not None:
            import pickle

            payload = pickle.dumps(("ok", "chaos-torn-result", rank))
            result_conn.send_bytes(payload[: max(1, len(payload) // 2)])
            os._exit(KILL_EXIT_CODE)
        if self.wedged_result_at == point and result_conn is not None:
            # A frame header promising 1 MiB that never arrives: the
            # hang-on-worker-death case the driver must survive.
            os.write(result_conn.fileno(), struct.pack("!i", 1 << 20))
            os._exit(KILL_EXIT_CODE)
        if self.goodbye_result_at == point and result_conn is not None:
            sock = getattr(result_conn, "_sock", None)
            if sock is not None:  # TCP ResultChannel
                from ..net.framing import KIND_GOODBYE, KIND_RESULT, encode_frame

                torn = encode_frame(KIND_RESULT, ("ok", "chaos-goodbye", rank))
                sock.sendall(torn[:-7])
                sock.sendall(encode_frame(KIND_GOODBYE, None))
            else:  # multiprocessing Connection: header + half the body
                import pickle

                payload = pickle.dumps(("ok", "chaos-goodbye", rank))
                os.write(
                    result_conn.fileno(),
                    struct.pack("!i", len(payload))
                    + payload[: len(payload) // 2],
                )
            os._exit(KILL_EXIT_CODE)
        if self.kill_at == point:
            os._exit(KILL_EXIT_CODE)

    def on_a2a_chunk(self, rank: int, arrivals: int) -> None:
        """All-to-all hook; called after each received exchange chunk."""
        if rank != self.rank or self._epoch != self.fire_epoch:
            return
        if (
            self.kill_after_a2a_chunks is not None
            and arrivals >= self.kill_after_a2a_chunks
        ):
            os._exit(KILL_EXIT_CODE)

    def on_recv_poll(self, rank: int) -> None:
        """Interconnect hook; called before each receive poll."""
        if (
            rank == self.rank
            and self.recv_delay_s > 0
            and self._epoch == self.fire_epoch
        ):
            time.sleep(self.recv_delay_s)

    def clip_write(self, rank: int, nbytes: int) -> Optional[int]:
        """Spill-dir hook; called before a write of ``nbytes``.

        Returns ``None`` to let the write proceed, or the number of bytes
        that should still reach the file before :class:`ChaosInjected`
        (ENOSPC) is raised — the caller performs the torn prefix write
        and raises.
        """
        if (
            rank != self.rank
            or self.enospc_after_bytes is None
            or self._epoch != self.fire_epoch
        ):
            return None
        if self._written + nbytes <= self.enospc_after_bytes:
            self._written += nbytes
            return None
        return min(nbytes, max(0, self.torn_write_bytes))

    def enospc_error(self, path: str) -> ChaosInjected:
        return ChaosInjected(
            errno.ENOSPC, f"chaos: spill device full writing {path}"
        )


# ----------------------------------------------------------------- the sweep


def run_chaos_case(
    spec: ChaosSpec,
    spill_dir: str,
    n_workers: int = 2,
    n_per_rank: int = 512,
    block_records: int = 32,
    memory_records: int = 384,
    job_timeout: float = 15.0,
    budget: float = 30.0,
    prefetch_blocks: int = 0,
    write_behind_blocks: int = 0,
    transport: str = "pipe",
    recover: bool = False,
    max_restarts: int = 1,
) -> dict:
    """One native sort with ``spec`` injected; the contract is *fail fast*.

    Returns a verdict dict: ``ok`` means the run surfaced a clean
    :class:`~repro.native.driver.NativeSortError` within ``budget``
    seconds (or, for non-terminal faults like ``recv_delay_s``, finished
    with a valid output).  ``ok=False`` captures the two failure modes
    this harness exists to catch — a hang past the budget, or a sort
    that silently "succeeds" despite a terminal fault.

    With ``recover=True`` the contract flips to *survive and agree*: the
    job runs with checkpointing and ``max_restarts``, must complete
    despite the fault, and its output must be bitwise identical to an
    undisturbed twin run (see :func:`_run_recovery_case`).
    """
    from ..core.config import SortConfig
    from ..native import NativeJob, NativeSorter
    from ..native.driver import NativeSortError

    if recover:
        return _run_recovery_case(
            spec,
            spill_dir,
            n_workers=n_workers,
            n_per_rank=n_per_rank,
            block_records=block_records,
            memory_records=memory_records,
            job_timeout=job_timeout,
            budget=budget,
            prefetch_blocks=prefetch_blocks,
            write_behind_blocks=write_behind_blocks,
            transport=transport,
            max_restarts=max_restarts,
        )

    rb = 16
    job = NativeJob(
        config=SortConfig(
            data_per_node_bytes=n_per_rank * rb,
            memory_bytes=memory_records * rb,
            block_bytes=block_records * rb,
            block_elems=block_records,
            seed=7,
        ),
        n_workers=n_workers,
        spill_dir=spill_dir,
        timeout=job_timeout,
        transport=transport,
        chaos=spec,
        prefetch_blocks=prefetch_blocks,
        write_behind_blocks=write_behind_blocks,
    )
    terminal = _is_terminal(spec)
    start = time.monotonic()
    verdict = {
        "fault": _describe_spec(spec),
        "ok": False,
        "elapsed": 0.0,
        "outcome": "",
    }
    try:
        result = NativeSorter(job).run()
    except NativeSortError as exc:
        verdict["elapsed"] = time.monotonic() - start
        verdict["outcome"] = f"NativeSortError: {exc}"
        verdict["ok"] = terminal and verdict["elapsed"] <= budget
        if not terminal:
            verdict["outcome"] = f"clean run failed: {exc}"
        elif verdict["elapsed"] > budget:
            verdict["outcome"] = (
                f"error took {verdict['elapsed']:.1f}s > budget {budget}s: {exc}"
            )
        if (
            verdict["ok"]
            and spec.sever_comm_at is not None
            and spec.sever_comm_at != "after:merge"
        ):
            # A severed mesh killed the job before any merge finished:
            # no (necessarily torn) output file may survive.
            torn = sorted(
                name
                for name in os.listdir(spill_dir)
                if name.startswith("output_") and name.endswith(".dat")
            )
            if torn:
                verdict["ok"] = False
                verdict["outcome"] = (
                    f"severed run left torn output files behind: {torn}"
                )
        return verdict
    verdict["elapsed"] = time.monotonic() - start
    if terminal:
        verdict["outcome"] = "sort 'succeeded' despite a terminal fault"
        return verdict
    report = result.validate()
    verdict["ok"] = report.ok and verdict["elapsed"] <= budget
    verdict["outcome"] = "valid output" if report.ok else "; ".join(report.issues)
    return verdict


def _is_terminal(spec: ChaosSpec) -> bool:
    return any(
        (spec.kill_at, spec.torn_result_at, spec.wedged_result_at,
         spec.goodbye_result_at, spec.stall_at, spec.sever_comm_at,
         spec.wedge_comm_at, spec.kill_after_a2a_chunks is not None,
         spec.enospc_after_bytes is not None)
    )


def _describe_spec(spec: ChaosSpec) -> str:
    for attr in (
        "kill_at",
        "torn_result_at",
        "wedged_result_at",
        "goodbye_result_at",
        "stall_at",
        "sever_comm_at",
        "wedge_comm_at",
    ):
        value = getattr(spec, attr)
        if value is not None:
            return f"{attr}={value} rank={spec.rank}"
    if spec.kill_after_a2a_chunks is not None:
        return (
            f"kill_after_a2a_chunks={spec.kill_after_a2a_chunks} "
            f"rank={spec.rank}"
        )
    if spec.enospc_after_bytes is not None:
        return f"enospc_after_bytes={spec.enospc_after_bytes} rank={spec.rank}"
    if spec.recv_delay_s:
        return f"recv_delay_s={spec.recv_delay_s} rank={spec.rank}"
    return "no-op spec"


def _fault_past_run_formation(spec: ChaosSpec) -> bool:
    """Whether the fault can only fire after run formation completed.

    Recovery from such a fault must re-read **zero** run-formation input
    blocks — the o(N) bound the acceptance criteria pin down.
    """
    if spec.kill_after_a2a_chunks is not None:
        return True
    point = (
        spec.kill_at or spec.sever_comm_at or spec.wedge_comm_at
        or spec.stall_at
    )
    if point is None:
        return False
    later = PHASE_BOUNDARIES[PHASE_BOUNDARIES.index("after:run_formation"):]
    return point in later or point == "before:report"


def _run_recovery_case(
    spec: ChaosSpec,
    spill_dir: str,
    *,
    n_workers: int,
    n_per_rank: int,
    block_records: int,
    memory_records: int,
    job_timeout: float,
    budget: float,
    prefetch_blocks: int,
    write_behind_blocks: int,
    transport: str,
    max_restarts: int,
) -> dict:
    """Differential recovery twin: chaos + restarts vs an undisturbed run.

    The chaos job checkpoints and may restart; it must finish, validate,
    actually have burned at least one restart, and produce output files
    bitwise identical to the clean twin's.  For faults that fire after
    run formation completed, the recovery counters must show zero input
    blocks re-read — recovery cost stays o(N).
    """
    import filecmp

    from ..core.config import SortConfig
    from ..native import NativeJob, NativeSorter
    from ..native.driver import NativeSortError

    rb = 16
    config = SortConfig(
        data_per_node_bytes=n_per_rank * rb,
        memory_bytes=memory_records * rb,
        block_bytes=block_records * rb,
        block_elems=block_records,
        seed=7,
    )

    def make_job(subdir: str, chaos, restarts: int) -> NativeJob:
        return NativeJob(
            config=config,
            n_workers=n_workers,
            spill_dir=os.path.join(spill_dir, subdir),
            timeout=job_timeout,
            transport=transport,
            chaos=chaos,
            prefetch_blocks=prefetch_blocks,
            write_behind_blocks=write_behind_blocks,
            max_restarts=restarts,
            # Tight watermark cadence so a mid-exchange death leaves
            # durable chunk marks behind (the replay-skip path).
            a2a_checkpoint_chunks=2,
        )

    verdict = {
        "fault": f"{_describe_spec(spec)} [recover]",
        "ok": False,
        "elapsed": 0.0,
        "outcome": "",
        "restarts": 0,
    }
    start = time.monotonic()
    try:
        clean = NativeSorter(make_job("clean", None, 0)).run()
        chaotic = NativeSorter(
            make_job("chaos", spec, max_restarts)
        ).run()
    except NativeSortError as exc:
        verdict["elapsed"] = time.monotonic() - start
        verdict["outcome"] = f"recovery failed: {exc}"
        return verdict
    verdict["elapsed"] = time.monotonic() - start
    verdict["restarts"] = chaotic.stats.restarts
    rec = chaotic.stats.recovery_dict()
    verdict["recovery"] = rec

    report = chaotic.validate()
    issues: List[str] = list(report.issues)
    if chaotic.stats.restarts < 1:
        issues.append(
            "fault never fired: the recovery run burned no restart"
        )
    for meta_clean, meta_chaos in zip(clean.outputs, chaotic.outputs):
        if not filecmp.cmp(meta_clean.path, meta_chaos.path, shallow=False):
            issues.append(
                f"rank {meta_chaos.rank} output differs from the "
                "undisturbed twin"
            )
    if _fault_past_run_formation(spec) and rec["rf_blocks_reread"] != 0:
        issues.append(
            f"recovery re-read {rec['rf_blocks_reread']:.0f} run-formation "
            "blocks for a fault past run formation (o(N) bound violated)"
        )
    if verdict["elapsed"] > budget:
        issues.append(
            f"recovery took {verdict['elapsed']:.1f}s > budget {budget}s"
        )
    verdict["ok"] = not issues
    verdict["outcome"] = (
        f"recovered after {chaotic.stats.restarts} restart(s), "
        "bitwise-equal output" if not issues else "; ".join(issues)
    )
    return verdict


def run_chaos_sweep(
    spill_root: str,
    n_workers: int = 2,
    points=None,
    job_timeout: float = 15.0,
    budget: float = 30.0,
    progress=None,
    pipelined: bool = False,
    transport: str = "pipe",
    recover: bool = False,
    keep_failures_dir: Optional[str] = None,
) -> List[dict]:
    """Kill one worker at every phase boundary; every run must fail fast.

    This is the acceptance sweep behind ``python -m repro conformance
    --chaos``: a worker death at *any* boundary terminates the job with
    a diagnostic :class:`NativeSortError` inside ``budget`` seconds —
    never a hang, never a bogus success.

    With ``pipelined=True`` every case runs with read-ahead and
    write-behind enabled, and one extra case injects a torn ENOSPC
    write — which then fires *inside the write-behind thread* and must
    still fail fast (the error is latched and re-raised on the worker's
    main thread).

    With ``recover=True`` every kill/sever/wedge fault becomes a
    recovery case instead (``--max-restarts 1``, see
    :func:`_run_recovery_case`): the job must *survive* the fault and
    agree bitwise with an undisturbed twin.  A failing case's spill
    directory (manifests included) is copied under ``keep_failures_dir``
    together with its verdict, as a reproducer artifact.
    """
    import json
    import shutil
    import tempfile

    points = kill_points() if points is None else list(points)
    pipe_kw = (
        {"prefetch_blocks": 4, "write_behind_blocks": 4} if pipelined else {}
    )
    specs = [ChaosSpec(rank=0, kill_at=point) for point in points]
    # One connection severed mid-protocol: the all-to-all is where the
    # bulk of the data crosses the mesh, so losing a PE's network there
    # must fail fast on every peer and leave no torn output files.
    specs.append(ChaosSpec(rank=0, sever_comm_at="before:all_to_all"))
    if recover:
        # A death *between* watermark checkpoints inside the exchange,
        # and a wedged (not just severed) mesh: the two hard resume
        # shapes beyond plain boundary kills.
        specs.append(ChaosSpec(rank=0, kill_after_a2a_chunks=3))
        specs.append(ChaosSpec(rank=0, wedge_comm_at="before:all_to_all"))
    if pipelined and not recover:
        # Torn disk-full write, deferred into the writer thread: the
        # threshold sits past the 8 KiB input (written synchronously
        # during generate), so the failing write is a run-formation
        # piece spill — executed by the write-behind thread.
        specs.append(ChaosSpec(rank=0, enospc_after_bytes=9000))
    verdicts = []
    for i, spec in enumerate(specs):
        if progress is not None:
            progress(i, len(specs), _describe_spec(spec))
        spill = tempfile.mkdtemp(
            prefix=f"chaos-{_describe_spec(spec).split()[0].replace(':', '-').replace('=', '-')}-",
            dir=spill_root,
        )
        shm_before = None
        if transport == "shm":
            from ..native.shm import list_shm_segments

            shm_before = set(list_shm_segments())
        try:
            verdict = run_chaos_case(
                spec,
                spill,
                n_workers=n_workers,
                job_timeout=job_timeout,
                budget=budget,
                transport=transport,
                recover=recover,
                **pipe_kw,
            )
            if pipelined:
                verdict["fault"] += " [pipelined]"
            if transport != "pipe":
                verdict["fault"] += f" [{transport}]"
            if shm_before is not None:
                # A kill at any boundary must not leak ring segments:
                # the driver unlinks in its attempt teardown even when
                # the job died mid-phase.
                from ..native.shm import list_shm_segments

                leaked = sorted(set(list_shm_segments()) - shm_before)
                if leaked:
                    verdict["ok"] = False
                    verdict["outcome"] = (
                        f"{verdict.get('outcome', '')}; leaked /dev/shm "
                        f"segments: {leaked}"
                    ).lstrip("; ")
            verdicts.append(verdict)
            if not verdict["ok"] and keep_failures_dir is not None:
                keep = os.path.join(
                    keep_failures_dir, os.path.basename(spill)
                )
                shutil.copytree(spill, keep, dirs_exist_ok=True)
                with open(
                    os.path.join(keep, "verdict.json"), "w", encoding="ascii"
                ) as handle:
                    json.dump(verdict, handle, indent=2, sort_keys=True)
        finally:
            shutil.rmtree(spill, ignore_errors=True)
    return verdicts


def run_recovery_smoke(
    spill_root: str,
    transports=("pipe", "tcp"),
    job_timeout: float = 15.0,
    budget: float = 60.0,
) -> List[dict]:
    """CI smoke: kill a rank at a phase boundary, resume, agree bitwise.

    One boundary kill per transport with ``--max-restarts 1``: the
    smallest end-to-end proof that manifests, epoch rendezvous and
    resume all hold together on both interconnects.
    """
    import shutil
    import tempfile

    verdicts = []
    for transport in transports:
        spill = tempfile.mkdtemp(
            prefix=f"recovery-smoke-{transport}-", dir=spill_root
        )
        try:
            verdicts.append(
                run_chaos_case(
                    ChaosSpec(rank=0, kill_at="after:run_formation"),
                    spill,
                    job_timeout=job_timeout,
                    budget=budget,
                    transport=transport,
                    recover=True,
                )
            )
            verdicts[-1]["fault"] += f" [{transport}]"
        finally:
            shutil.rmtree(spill, ignore_errors=True)
    return verdicts


# ------------------------------------------------------- sort-service modes

#: Service-harness job shapes: quick (~0.3 s) and slow (~2 s) two-worker
#: sorts, sized like the tier-1 suite's.
_SVC_SMALL = {
    "data_mib": 128 / 1024, "memory_mib": 48 / 1024, "block_kib": 2.0,
    "n_workers": 2, "seed": 42, "timeout": 120.0,
}
_SVC_SLOW = {
    "data_mib": 1.0, "memory_mib": 0.25, "block_kib": 2.0,
    "n_workers": 2, "seed": 7, "timeout": 120.0,
}


def _svc_output_bytes(result) -> bytes:
    chunks = []
    for meta in sorted(result.outputs, key=lambda m: m.rank):
        with open(meta.path, "rb") as handle:
            chunks.append(handle.read())
    return b"".join(chunks)


def run_service_smoke(spill_root: str, budget: float = 120.0) -> List[dict]:
    """CI smoke: a live service, two overlapping wire jobs, clean stop.

    Exercises the whole service stack end to end — daemon, warm pool,
    JSON control plane, concurrent dispatch — and requires both jobs
    DONE with valid output, zero worker respawns (the pool stayed
    warm), and a clean shutdown, all inside ``budget`` seconds.
    """
    import tempfile

    from ..service import SortClient, SortService

    start = time.monotonic()
    verdict = {"fault": "service-smoke", "ok": False, "elapsed": 0.0,
               "outcome": ""}
    spill = tempfile.mkdtemp(prefix="service-smoke-", dir=spill_root)
    issues: List[str] = []
    try:
        with SortService(pool_size=4, spill_root=spill) as svc:
            with SortClient(svc.addr) as client:
                slow = client.submit(dict(_SVC_SLOW, label="slow"))
                quick = client.submit(dict(_SVC_SMALL, label="quick"))
                for job_id in (quick, slow):
                    reply = client.result(job_id, timeout=budget)
                    state = reply["job"]["state"]
                    if state != "DONE":
                        issues.append(
                            f"{job_id} ended {state}: "
                            f"{reply['job'].get('error')}"
                        )
                stats = client.stats()
            if stats["respawns"] != 0:
                issues.append(
                    f"pool burned {stats['respawns']} respawns on a "
                    "fault-free run"
                )
            if stats["jobs"]["done"] != 2:
                issues.append(f"expected 2 done jobs, saw {stats['jobs']}")
    except Exception as exc:  # noqa: BLE001 - the smoke must never raise
        issues.append(f"smoke raised: {exc!r}")
    finally:
        import shutil

        shutil.rmtree(spill, ignore_errors=True)
    verdict["elapsed"] = time.monotonic() - start
    if verdict["elapsed"] > budget:
        issues.append(f"took {verdict['elapsed']:.1f}s > budget {budget}s")
    verdict["ok"] = not issues
    verdict["outcome"] = (
        "two overlapping wire jobs DONE, pool warm, clean shutdown"
        if not issues else "; ".join(issues)
    )
    return [verdict]


def run_service_chaos(spill_root: str, budget: float = 180.0) -> List[dict]:
    """Nightly: kill a pool worker mid-job; only that job feels it.

    Job A runs with one restart allowed; one of its pool workers is
    SIGKILLed mid-flight.  The contract: concurrent job B completes
    clean with zero restarts, the pool respawns the victim, job A
    recovers via its per-job supervisor, and A's recovered output is
    bitwise identical to a single-shot run of the same spec.
    """
    import signal as _signal
    import tempfile

    from ..native.driver import NativeSorter
    from ..service import SortService
    from ..service.jobs import build_native_job

    start = time.monotonic()
    verdict = {"fault": "service-chaos: kill pool worker mid-job",
               "ok": False, "elapsed": 0.0, "outcome": "", "restarts": 0}
    spill = tempfile.mkdtemp(prefix="service-chaos-", dir=spill_root)
    issues: List[str] = []
    try:
        oracle = NativeSorter(
            build_native_job(dict(_SVC_SLOW), os.path.join(spill, "oracle"))
        ).run()
        with SortService(
            pool_size=4, spill_root=os.path.join(spill, "svc"), listen=None
        ) as svc:
            a = svc.submit(dict(_SVC_SLOW, label="victim", max_restarts=1))
            deadline = time.monotonic() + 30.0
            pids: List[int] = []
            while time.monotonic() < deadline and not pids:
                pids = svc.worker_pids(a)
                if not pids:
                    time.sleep(0.01)
            b = svc.submit(dict(_SVC_SLOW, seed=8, label="bystander"))
            if not pids:
                issues.append("victim job never dispatched")
            else:
                os.kill(pids[0], _signal.SIGKILL)
            jb = svc.wait(b, timeout=budget)
            ja = svc.wait(a, timeout=budget)
            verdict["restarts"] = ja.policy.restarts_used
            if jb.state != "DONE":
                issues.append(f"bystander ended {jb.state}: {jb.error}")
            elif jb.policy.restarts_used != 0:
                issues.append("bystander burned a restart")
            if ja.state != "DONE":
                issues.append(f"victim ended {ja.state}: {ja.error}")
            else:
                if ja.policy.restarts_used < 1:
                    issues.append("victim recovered without a restart?")
                if _svc_output_bytes(ja.result) != _svc_output_bytes(oracle):
                    issues.append(
                        "victim's recovered output differs from the "
                        "single-shot oracle"
                    )
            if svc.pool.respawns < 1:
                issues.append("the pool never respawned the killed worker")
    except Exception as exc:  # noqa: BLE001
        issues.append(f"service chaos raised: {exc!r}")
    finally:
        import shutil

        shutil.rmtree(spill, ignore_errors=True)
    verdict["elapsed"] = time.monotonic() - start
    if verdict["elapsed"] > budget:
        issues.append(f"took {verdict['elapsed']:.1f}s > budget {budget}s")
    verdict["ok"] = not issues
    verdict["outcome"] = (
        f"victim recovered ({verdict['restarts']} restart), bystander "
        "clean, pool healed" if not issues else "; ".join(issues)
    )
    return [verdict]
