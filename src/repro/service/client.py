"""Client side of the sort service: JSON-over-TCP on the framing layer.

A :class:`SortClient` talks to a running ``python -m repro serve``
daemon (or an in-process :class:`~repro.service.daemon.SortService`
with a listen address).  Every call is one request/reply exchange of
:data:`~repro.net.framing.KIND_CTRL` frames whose metadata is a JSON
object — no pickle crosses the trust boundary in either direction.

    >>> client = SortClient(("127.0.0.1", 7099))
    >>> jid = client.submit({"data_mib": 64, "n_workers": 4})
    >>> client.result(jid)["job"]["state"]
    'DONE'
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple

from ..native.comm_api import CommError
from ..net.framing import KIND_CTRL, recv_frame, send_json_frame
from .jobs import ServiceError

__all__ = ["SortClient"]

#: Slack added on top of an application-level wait so the *socket*
#: timeout fires only when the service truly went silent, not while it
#: is still legitimately holding a long-poll open.
_SOCKET_SLACK = 15.0


class SortClient:
    """One connection to a sort service's control endpoint."""

    def __init__(self, addr: Tuple[str, int], timeout: float = 30.0):
        self.addr = (str(addr[0]), int(addr[1]))
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None

    # -- plumbing -------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.addr, timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _call(self, msg: dict, timeout: Optional[float] = None) -> dict:
        sock = self._connect()
        sock.settimeout((timeout or self.timeout) + _SOCKET_SLACK)
        try:
            send_json_frame(sock, KIND_CTRL, msg)
            frame = recv_frame(sock)
        except (OSError, CommError) as exc:
            self.close()
            raise ServiceError(f"service at {self.addr} unreachable: {exc}")
        if frame is None:
            self.close()
            raise ServiceError(f"service at {self.addr} closed the connection")
        _kind, reply, _epoch, _fence, _nbytes = frame
        if not isinstance(reply, dict):
            self.close()
            raise ServiceError(f"malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "unknown service error"))
        return reply

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SortClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- commands -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._call({"cmd": "ping"}).get("pong"))

    def submit(self, spec: dict) -> str:
        """Submit a sort spec (see ``repro.service.jobs.SPEC_FIELDS``)."""
        return str(self._call({"cmd": "submit", "spec": spec})["id"])

    def status(self, job_id: str) -> dict:
        return self._call({"cmd": "status", "id": job_id})["job"]

    def jobs(self) -> List[dict]:
        return self._call({"cmd": "jobs"})["jobs"]

    def stats(self) -> dict:
        return self._call({"cmd": "stats"})["stats"]

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's state afterwards."""
        return self._call({"cmd": "cancel", "id": job_id})["state"]

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Long-poll until the job is terminal; returns the full reply.

        The reply carries ``job`` (final snapshot) and, for a DONE job,
        ``result`` with validation, output-file metadata and the sort's
        :class:`~repro.native.stats.NativeStats` dict.
        """
        return self._call(
            {"cmd": "result", "id": job_id, "timeout": timeout},
            timeout=timeout,
        )

    def shutdown(self) -> None:
        """Ask the service to shut down (reply comes before it stops)."""
        self._call({"cmd": "shutdown"})
        self.close()
