"""Service job model: specs over the wire, states in the scheduler.

A client describes a sort with a flat JSON-safe *spec* dict
(:data:`SPEC_FIELDS` documents every key); the service compiles it into
a :class:`~repro.native.job.NativeJob` bound to the shared spill
directory, stamps the job's wire identity (``job_tag``) and spill
namespace (``<id>-<fingerprint>``), and tracks it through the state
machine::

    QUEUED ──▶ ADMITTED ──▶ RUNNING ──▶ DONE
       │            │           ├─────▶ FAILED
       └────────────┴───────────┴─────▶ CANCELLED

``ADMITTED`` is the instant the admission controller reserved the job's
memory/spill budget and picked its workers; dispatch follows in the
same scheduler step, so the observable dwell time there is ~0 — the
state exists so budget reservation and execution are separately
auditable.  A restarting job (rank died, restarts remaining) goes back
to ``QUEUED`` at the *front* of the queue with its budget released, so
recovery never deadlocks against admission.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from ..core.config import ConfigError, SortConfig
from ..native.job import NativeJob
from ..recovery.manifest import job_fingerprint
from ..recovery.supervisor import RestartPolicy

__all__ = [
    "ServiceError",
    "JobRejected",
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "SPEC_FIELDS",
    "SPEC_CHOICES",
    "build_native_job",
    "ServiceJob",
]

KiB = 1024
MiB = 1024 * 1024


class ServiceError(RuntimeError):
    """A service-level protocol or lifecycle error."""


class JobRejected(ServiceError):
    """The spec can never run on this service (bad knobs or too big)."""


QUEUED = "QUEUED"
ADMITTED = "ADMITTED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: Every accepted spec key, its type, and its default.  ``chaos`` is
#: library-only (not JSON-serializable); everything else round-trips
#: through the JSON control channel.
SPEC_FIELDS = {
    "label": (str, ""),
    "n_workers": (int, 2),
    "data_mib": (float, 1.0),
    "memory_mib": (float, 8.0),
    "block_kib": (float, 64.0),
    "seed": (int, 42),
    "skew": (bool, False),
    "randomize": (bool, True),
    "selection": (str, "sampled"),
    "sample_every": (int, None),
    "timeout": (float, 120.0),
    "transport": (str, "pipe"),
    "pending_sends": (int, 4),
    "prefetch_blocks": (int, 0),
    "write_behind_blocks": (int, 0),
    "max_restarts": (int, 0),
    "checkpoint": (bool, False),
    "a2a_checkpoint_chunks": (int, 8),
    "cleanup_on_abort": (bool, False),
    "records": (str, "fixed16"),
    "algo": (str, "canonical"),
    "shm_ring_kib": (int, None),
    "chaos": (object, None),
}

#: Choice-valued spec fields and their accepted values.  ``transport``
#: is narrower than the native layer's because the pool's PEs live in
#: one host: per-job meshes are pipe pairs or shm rings, never sockets.
SPEC_CHOICES = {
    "transport": ("pipe", "shm"),
    "selection": ("sampled", "basic", "bisect"),
    "records": ("fixed16", "string"),
    "algo": ("canonical", "striped", "guidesort"),
}

#: Numeric spec fields and their floors: (minimum, or None if the field
#: just has to be positive when present).  ``None`` values are allowed
#: everywhere (they mean "use the resolved default").
_SPEC_MINIMUMS = {
    "n_workers": 1,
    "data_mib": None,
    "memory_mib": None,
    "block_kib": None,
    "timeout": None,
    "pending_sends": 1,
    "prefetch_blocks": 0,
    "write_behind_blocks": 0,
    "max_restarts": 0,
    "a2a_checkpoint_chunks": 1,
    "sample_every": 1,
    "shm_ring_kib": 1,
}


def _reject(key: str, value, detail: str) -> JobRejected:
    """The uniform rejection message: key, offending value, what's legal."""
    return JobRejected(f"spec field {key!r}={value!r}: {detail}")


def _coerce(spec: dict) -> dict:
    out = {}
    for key, value in spec.items():
        if key not in SPEC_FIELDS:
            raise JobRejected(
                f"unknown spec field {key!r}; accepted: "
                f"{sorted(SPEC_FIELDS)}"
            )
        typ, _default = SPEC_FIELDS[key]
        if value is None or typ is object:
            out[key] = value
            continue
        try:
            out[key] = typ(value)
        except (TypeError, ValueError) as exc:
            raise JobRejected(f"spec field {key!r}={value!r}: {exc}") from exc
    for key, (_typ, default) in SPEC_FIELDS.items():
        out.setdefault(key, default)
    return out


def build_native_job(spec: dict, spill_dir: str) -> NativeJob:
    """Compile a client spec into a runnable :class:`NativeJob`.

    Raises :class:`JobRejected` on unknown fields or values the native
    layer rejects — the submit-time half of admission control (the
    budget half lives in the scheduler).  Identity fields (``job_tag``,
    ``spill_namespace``, ``epoch``) are left at their defaults; the
    service stamps them after assigning the job id.
    """
    spec = _coerce(spec)
    for key, accepted in SPEC_CHOICES.items():
        if spec[key] not in accepted:
            raise _reject(
                key, spec[key],
                "accepted values are " + ", ".join(repr(v) for v in accepted),
            )
    for key, floor in _SPEC_MINIMUMS.items():
        value = spec[key]
        if value is None:
            continue
        if floor is None:
            if value <= 0:
                raise _reject(key, value, "must be > 0")
        elif value < floor:
            raise _reject(key, value, f"must be >= {floor}")
    if spec["shm_ring_kib"] is not None and spec["transport"] != "shm":
        raise _reject(
            "shm_ring_kib", spec["shm_ring_kib"],
            f"only applies to transport='shm', got "
            f"transport={spec['transport']!r}",
        )
    try:
        config = SortConfig(
            data_per_node_bytes=spec["data_mib"] * MiB,
            memory_bytes=spec["memory_mib"] * MiB,
            block_bytes=spec["block_kib"] * KiB,
            seed=spec["seed"],
            randomize=spec["randomize"],
            selection=spec["selection"],
            sample_every=spec["sample_every"],
        )
        return NativeJob(
            config=config,
            n_workers=spec["n_workers"],
            spill_dir=spill_dir,
            skew=spec["skew"],
            timeout=spec["timeout"],
            transport=spec["transport"],
            pending_sends=spec["pending_sends"],
            prefetch_blocks=spec["prefetch_blocks"],
            write_behind_blocks=spec["write_behind_blocks"],
            chaos=spec["chaos"],
            max_restarts=spec["max_restarts"],
            checkpoint=spec["checkpoint"],
            a2a_checkpoint_chunks=spec["a2a_checkpoint_chunks"],
            cleanup_on_abort=spec["cleanup_on_abort"],
            records=spec["records"],
            algo=spec["algo"],
            shm_ring_kib=spec["shm_ring_kib"],
        )
    except ConfigError as exc:
        # Feasibility and cross-field constraints the native layer owns
        # (e.g. the paper's two-pass N = O(M^2/(P B)) limit) pass
        # through with their own wording; the uniform per-key checks
        # above already caught single-field mistakes.
        raise JobRejected(str(exc)) from exc


@dataclass
class ServiceJob:
    """One job's lifetime inside the service (scheduler-owned state)."""

    id: str
    num: int
    label: str
    job: NativeJob  # identity-stamped template; epoch applied per attempt
    mem_cost: int
    spill_cost: int
    state: str = QUEUED
    epoch: int = 0
    suspects: tuple = ()
    cancel_requested: bool = False
    error: Optional[str] = None
    #: The assembled NativeSortResult on DONE (library callers read the
    #: output files through it; the JSON surface carries a summary).
    result: Optional[object] = None
    #: Knob assignments the auto-tuner filled in at admission (empty
    #: when tuning is off or every knob was explicit in the spec).
    tuned: dict = field(default_factory=dict)
    policy: RestartPolicy = field(default_factory=lambda: RestartPolicy(0))
    done: threading.Event = field(default_factory=threading.Event)
    created_wall: float = field(default_factory=time.time)
    created: float = field(default_factory=time.monotonic)
    admitted: Optional[float] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Seconds spent waiting for admission (set when first admitted).
    admission_wait: Optional[float] = None

    @property
    def namespace(self) -> str:
        return self.job.spill_namespace

    def attempt_job(self) -> NativeJob:
        """The NativeJob for the *current* attempt (epoch + suspects)."""
        if self.epoch == 0 and not self.suspects:
            return self.job
        return dc_replace(
            self.job, epoch=self.epoch, suspect_ranks=tuple(self.suspects)
        )

    def snapshot(self, queue_position: Optional[int] = None) -> dict:
        """JSON-safe status view (what ``status``/``jobs`` return)."""
        out = {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "n_workers": self.job.n_workers,
            "total_records": self.job.total_records,
            "mem_cost_bytes": self.mem_cost,
            "spill_cost_bytes": self.spill_cost,
            "namespace": self.namespace,
            "epoch": self.epoch,
            "restarts": self.policy.restarts_used,
            "cancel_requested": self.cancel_requested,
            "created_at": self.created_wall,
            "error": self.error,
        }
        if self.tuned:
            out["tuned_knobs"] = dict(self.tuned)
        if queue_position is not None:
            out["queue_position"] = queue_position
        if self.admission_wait is not None:
            out["admission_wait_s"] = round(self.admission_wait, 6)
        if self.started is not None:
            end = self.finished if self.finished is not None else time.monotonic()
            out["run_time_s"] = round(end - self.started, 6)
        return out


def stamp_identity(job: NativeJob, num: int, job_id: str) -> NativeJob:
    """Bind a compiled job to its service identity.

    ``job_tag`` (the wire fence's job half) is the unique submission
    number; the spill namespace is ``<id>-<fingerprint[:8]>`` — unique
    per submission even when two clients submit byte-identical specs,
    yet still carrying the fingerprint so a human can match files to
    manifests.
    """
    fingerprint = job_fingerprint(job)
    return dc_replace(
        job,
        job_tag=num,
        spill_namespace=f"{job_id}-{fingerprint[:8]}",
    )


def job_costs(job: NativeJob) -> "tuple[int, int]":
    """(memory, spill) bytes this job charges against the budgets.

    Memory: M per worker (the native layer's working-set budget is
    honored per process, so the aggregate is exactly ``P·M``).  Spill:
    input + run pieces + segments/output live simultaneously at the
    all-to-all peak — 3 copies of the data volume.
    """
    mem = job.n_workers * job.memory_bytes
    data = job.total_records * job.record_bytes
    return int(mem), int(3 * data)
