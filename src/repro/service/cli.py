"""CLI surface of the sort service: ``serve``, ``submit``, ``jobs``.

::

    python -m repro serve --pool 4 --spill-root /tmp/sort-svc \\
        --listen 127.0.0.1:7099
    python -m repro submit --connect 127.0.0.1:7099 --data-mib 64 \\
        --nodes 4 --wait
    python -m repro jobs --connect 127.0.0.1:7099 [--stats] [--json]
    python -m repro jobs --connect 127.0.0.1:7099 --cancel j3
    python -m repro jobs --connect 127.0.0.1:7099 --shutdown

``serve`` runs the daemon in the foreground until SIGINT/SIGTERM (or a
client ``--shutdown``); everything else is a thin
:class:`~repro.service.client.SortClient` wrapper.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from .jobs import ServiceError

__all__ = ["run_serve", "run_submit", "run_jobs"]

MiB = 2**20


def _parse_addr(text: str):
    from ..net.rendezvous import parse_hostport

    return parse_hostport(text)


def run_serve(argv) -> int:
    """``python -m repro serve``: run the sort service daemon."""
    from .daemon import SortService

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the persistent sort service over a warm PE pool.",
    )
    parser.add_argument(
        "--pool", type=int, default=4, metavar="P",
        help="warm pool size: persistent worker processes",
    )
    parser.add_argument(
        "--spill-root", required=True,
        help="shared spill directory (jobs are namespaced inside it)",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="control endpoint (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--memory-budget-mib", type=float, default=None, metavar="MIB",
        help="aggregate worker-memory admission budget "
        "(default: 64 MiB per pool worker)",
    )
    parser.add_argument(
        "--spill-budget-mib", type=float, default=None, metavar="MIB",
        help="aggregate spill-footprint admission budget (default: unmetered)",
    )
    parser.add_argument(
        "--tuning-file", default=None, metavar="PATH",
        help="ablation file the auto-tuner reads "
        "(default: the committed benchmarks/BENCH_ablations.json)",
    )
    parser.add_argument(
        "--no-tuning", action="store_true",
        help="never auto-fill knobs on submitted specs",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="announce the endpoint as one JSON line instead of prose",
    )
    args = parser.parse_args(argv)
    if args.pool < 1:
        print(f"--pool must be >= 1, got {args.pool}", file=sys.stderr)
        return 2

    service = SortService(
        pool_size=args.pool,
        spill_root=args.spill_root,
        listen=args.listen,
        memory_budget_bytes=(
            int(args.memory_budget_mib * MiB)
            if args.memory_budget_mib is not None else None
        ),
        spill_budget_bytes=(
            int(args.spill_budget_mib * MiB)
            if args.spill_budget_mib is not None else None
        ),
        tuning=False if args.no_tuning else (args.tuning_file or None),
    )
    host, port = service.addr
    if args.json:
        print(json.dumps({
            "listen": f"{host}:{port}", "pool": args.pool,
            "spill_root": args.spill_root,
            "memory_budget_bytes": service.memory_budget_bytes,
            "spill_budget_bytes": service.spill_budget_bytes,
        }), flush=True)
    else:
        print(
            f"sort service: pool of {args.pool} PEs, control endpoint "
            f"{host}:{port}, spill root {args.spill_root}",
            flush=True,
        )

    stop = threading.Event()

    def _on_signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    try:
        # Wake periodically so a client-initiated shutdown (which joins
        # the scheduler) also ends the foreground process.
        while not stop.is_set() and service._scheduler.is_alive():
            stop.wait(0.5)
    finally:
        service.close()
    return 0


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--label", default="", help="human-readable job label")
    parser.add_argument(
        "--nodes", type=int, default=2, help="worker PEs for this job"
    )
    parser.add_argument("--data-mib", type=float, default=1.0)
    parser.add_argument("--memory-mib", type=float, default=8.0)
    parser.add_argument(
        "--block-kib", type=float, default=None,
        help="block size in KiB (unset lets the service auto-tuner "
        "pick; the service default is 64)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--workload", choices=("random", "skewed"), default="random"
    )
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument(
        "--max-restarts", type=int, default=0,
        help="per-job recovery budget (see docs/RECOVERY.md)",
    )
    parser.add_argument(
        "--cleanup-on-abort", action="store_true",
        help="purge the job's spill namespace if it fails for good",
    )
    parser.add_argument(
        "--records", choices=("fixed16", "string"), default="fixed16",
        help="record model: fixed 16-byte or variable-length string "
        "records (see docs/NATIVE.md)",
    )
    parser.add_argument(
        "--algo", choices=("canonical", "striped", "guidesort"),
        default="canonical",
        help="native sort backend (see docs/NATIVE.md)",
    )
    parser.add_argument(
        "--transport", choices=("pipe", "shm"), default=None,
        help="per-job mesh substrate (default: service default, 'pipe')",
    )
    parser.add_argument(
        "--shm-ring-kib", type=int, default=None, metavar="KIB",
        help="shm transport: per-channel ring capacity "
        "(see docs/TUNING.md)",
    )


def _spec_from_args(args) -> dict:
    spec = {
        "label": args.label,
        "n_workers": args.nodes,
        "data_mib": args.data_mib,
        "memory_mib": args.memory_mib,
        "seed": args.seed,
        "skew": args.workload == "skewed",
        "timeout": args.timeout,
        "max_restarts": args.max_restarts,
        "cleanup_on_abort": args.cleanup_on_abort,
        "records": args.records,
        "algo": args.algo,
    }
    # Knob-ish flags stay *out* of the spec when unset, so the service
    # auto-tuner may fill them; an explicit flag always wins.
    if args.block_kib is not None:
        spec["block_kib"] = args.block_kib
    if args.transport is not None:
        spec["transport"] = args.transport
    if args.shm_ring_kib is not None:
        spec["shm_ring_kib"] = args.shm_ring_kib
    return spec


def run_submit(argv) -> int:
    """``python -m repro submit``: submit one job to a running service."""
    from .client import SortClient

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a sort job to a running sort service.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the service's control endpoint",
    )
    _add_spec_args(parser)
    parser.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and report its outcome",
    )
    parser.add_argument(
        "--wait-timeout", type=float, default=None, metavar="S",
        help="give up waiting after S seconds (with --wait)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    try:
        with SortClient(_parse_addr(args.connect)) as client:
            job_id = client.submit(_spec_from_args(args))
            if not args.wait:
                if args.json:
                    print(json.dumps({"id": job_id, "state": "QUEUED"}))
                else:
                    print(f"submitted {job_id}")
                return 0
            reply = client.result(job_id, timeout=args.wait_timeout)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    job = reply["job"]
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
    elif job["state"] == "DONE":
        res = reply.get("result", {})
        keys = res.get("validation", {}).get("total_keys", "?")
        print(f"{job_id} DONE: {keys} records sorted and valid")
    else:
        print(f"{job_id} {job['state']}: {job.get('error')}")
    return 0 if job["state"] == "DONE" else 1


def run_jobs(argv) -> int:
    """``python -m repro jobs``: inspect or control a running service."""
    from .client import SortClient

    parser = argparse.ArgumentParser(
        prog="python -m repro jobs",
        description="List jobs, read service stats, cancel, or shut down.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the service's control endpoint",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print service-level stats"
    )
    parser.add_argument(
        "--cancel", metavar="JOB", help="cancel the given job id"
    )
    parser.add_argument(
        "--shutdown", action="store_true", help="stop the service"
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    try:
        with SortClient(_parse_addr(args.connect)) as client:
            if args.cancel:
                state = client.cancel(args.cancel)
                if args.json:
                    print(json.dumps({"id": args.cancel, "state": state}))
                else:
                    print(f"{args.cancel}: {state}")
                return 0
            if args.shutdown:
                client.shutdown()
                if not args.json:
                    print("service stopping")
                return 0
            if args.stats:
                stats = client.stats()
                if args.json:
                    print(json.dumps(stats, indent=2, sort_keys=True))
                else:
                    jobs, pool = stats["jobs"], stats["pool"]
                    print(
                        f"uptime {stats['uptime_s']:.0f}s — "
                        f"{jobs['done']} done, {jobs['failed']} failed, "
                        f"{jobs['cancelled']} cancelled, "
                        f"{jobs['running']} running, {jobs['queued']} queued; "
                        f"pool {pool['busy']}/{pool['size']} busy, "
                        f"utilization {pool['utilization']:.1%}, "
                        f"{stats['restarts']} restarts, "
                        f"{stats['respawns']} respawns"
                    )
                    tuning = stats.get("tuning", {})
                    print(
                        "auto-tuning "
                        + ("on" if tuning.get("enabled") else "off")
                        + f", {tuning.get('jobs_tuned', 0)} jobs tuned"
                    )
                return 0
            jobs = client.jobs()
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
    else:
        if not jobs:
            print("no jobs")
        for job in jobs:
            line = (
                f"{job['id']:>6}  {job['state']:<9}  "
                f"P={job['n_workers']}  {job['total_records']} records"
            )
            if job.get("label"):
                line += f"  [{job['label']}]"
            if job.get("tuned_knobs"):
                line += "  tuned: " + ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(job["tuned_knobs"].items())
                )
            if job.get("error"):
                line += f"  error: {job['error']}"
            print(line)
    return 0
