"""Service-level statistics: the scheduler's own counters.

Per-job sort statistics stay where they always were
(:class:`~repro.native.stats.NativeStats` on each finished job's
result); this module aggregates what only the *service* can see —
queue behaviour, admission waits, pool utilization, restarts and
respawns — into one JSON-safe snapshot surfaced by the ``stats``
control command and ``python -m repro jobs --stats``.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = ["ServiceStats"]


class ServiceStats:
    """Mutable counters owned by the scheduler (callers hold its lock)."""

    def __init__(self):
        self.started = time.monotonic()
        self.submitted = 0
        self.rejected = 0
        self.done = 0
        self.failed = 0
        self.cancelled = 0
        #: Job restarts performed by the per-job supervisor policy.
        self.restarts = 0
        #: Dispatches (attempts), including restarts.
        self.dispatches = 0
        #: Jobs whose spec got at least one auto-tuned knob at admission.
        self.tuned_jobs = 0
        self.queue_depth_peak = 0
        self._admission_waits: List[float] = []

    def note_queue_depth(self, depth: int) -> None:
        self.queue_depth_peak = max(self.queue_depth_peak, depth)

    def note_admission_wait(self, seconds: float) -> None:
        self._admission_waits.append(float(seconds))

    def snapshot(self, pool, queue_depth: int, running: int,
                 reserved_mem: int, reserved_spill: int,
                 memory_budget: int, spill_budget,
                 tuning_enabled: bool = False) -> Dict:
        """One JSON-safe view of the whole service."""
        uptime = max(time.monotonic() - self.started, 1e-9)
        waits = self._admission_waits
        busy_now = 0.0
        workers = []
        for handle in pool.handles:
            busy = handle.busy_seconds
            if handle.busy_since is not None:
                busy += time.monotonic() - handle.busy_since
                busy_now += 1
            workers.append({
                "worker_id": handle.worker_id,
                "pid": handle.pid,
                "alive": handle.proc.is_alive(),
                "busy": handle.busy_seq is not None,
                "job": handle.job_id,
                "jobs_run": handle.jobs_run,
                "busy_seconds": round(busy, 6),
            })
        total_busy = sum(w["busy_seconds"] for w in workers)
        return {
            "uptime_s": round(uptime, 3),
            "jobs": {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "done": self.done,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "running": running,
                "queued": queue_depth,
            },
            "restarts": self.restarts,
            "dispatches": self.dispatches,
            "tuning": {
                "enabled": bool(tuning_enabled),
                "jobs_tuned": self.tuned_jobs,
            },
            "respawns": pool.respawns,
            "queue": {
                "depth": queue_depth,
                "depth_peak": self.queue_depth_peak,
            },
            "admission": {
                "waits": len(waits),
                "wait_total_s": round(sum(waits), 6),
                "wait_max_s": round(max(waits), 6) if waits else 0.0,
            },
            "budget": {
                "memory_bytes": memory_budget,
                "memory_reserved_bytes": reserved_mem,
                "spill_bytes": spill_budget,
                "spill_reserved_bytes": reserved_spill,
            },
            "pool": {
                "size": pool.size,
                "busy": int(busy_now),
                "utilization": round(total_busy / (pool.size * uptime), 6),
                "workers": workers,
            },
        }
