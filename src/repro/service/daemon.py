"""Sort-as-a-service: a multi-job scheduler over the warm PE pool.

:class:`SortService` is the long-running counterpart of the single-shot
:class:`~repro.native.driver.NativeSorter`: it owns a
:class:`~repro.service.pool.WarmPool` of persistent worker processes
and multiplexes any number of client sort jobs over it.

One **scheduler thread** owns all mutable state (under one lock shared
with the thin client-facing entry points) and runs the whole control
loop: admission, dispatch, result collection, failure handling,
restarts, and worker respawn.  It blocks in one
``multiprocessing.connection.wait`` over

* a wakeup pipe (submissions, cancels, shutdown poke it),
* every pool worker's control pipe (results),
* every pool worker's process sentinel (deaths).

**Isolation between jobs** rests on three mechanisms, each introduced
by an earlier layer and composed here:

* fresh per-job mesh pipes (:meth:`WarmPool.dispatch`) — no shared data
  path between jobs at all;
* the (job, epoch) wire fence — a frame from job A cannot be delivered
  into job B even if a channel were shared;
* per-job spill namespaces — cleanup of one job (abort included)
  cannot touch another's blocks.

**Admission control** is strict FIFO over two budgets: aggregate
worker memory (``P·M`` per job) and aggregate spill footprint (3 data
copies per job at the all-to-all peak).  The head job blocks the queue
until it fits — jobs whose combined cost exceeds a budget are thereby
*provably serialized*, and nothing ever starves.

**Failure handling** applies the recovery subsystem per job: a worker
death (or error report) fails only the attempt it was running; the
job's own :class:`~repro.recovery.supervisor.RestartPolicy` decides
whether it re-queues (at the *front*, epoch + 1, implicated rank marked
suspect) or fails for good.  The dead worker is respawned and the pool
keeps serving every other job throughout.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Dict, List, Optional, Set

from ..native.blockstore import purge_namespace
from ..native.driver import assemble_result
from ..recovery.supervisor import RestartPolicy
from .jobs import (
    ADMITTED,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRejected,
    ServiceError,
    ServiceJob,
    build_native_job,
    job_costs,
    stamp_identity,
)
from .pool import MSG_RESULT, WarmPool, WorkerHandle
from .stats import ServiceStats
from ..tuning.policy import TuningPolicy, suggest_job_knobs

__all__ = ["SortService"]

#: Grace beyond a job's own timeout before the scheduler declares an
#: attempt wedged and interrupts it; one more grace period later the
#: still-busy workers are killed outright (their deaths then unwind the
#: attempt through the normal sentinel path).
ATTEMPT_GRACE = 30.0
KILL_GRACE = 15.0


@dataclass
class _Attempt:
    """One dispatch of one job onto a set of pool workers."""

    seq: int
    job_id: str
    epoch: int
    handles: Dict[int, WorkerHandle]  # rank -> handle
    outstanding: Set[int]  # ranks still owing a result
    started: float
    deadline: float
    results: Dict[int, tuple] = field(default_factory=dict)
    failed: bool = False
    fail_rank: Optional[int] = None
    fail_error: str = ""
    interrupted: bool = False
    killed: bool = False


class SortService:
    """A persistent sort service over a warm pool of ``pool_size`` PEs."""

    def __init__(
        self,
        pool_size: int = 4,
        spill_root: str = "spill-service",
        listen: Optional[str] = "127.0.0.1:0",
        memory_budget_bytes: Optional[int] = None,
        spill_budget_bytes: Optional[int] = None,
        ctx=None,
        tuning=None,
    ):
        self.spill_root = str(spill_root)
        # ``tuning``: None = auto-load the committed ablation file (an
        # absent/unreadable file silently means "no suggestions");
        # False = off; a str = load that ablation file; a TuningPolicy
        # = use as-is.  Suggestions only ever fill knobs the client
        # left unset — explicit spec values always win.
        if tuning is False:
            self.tuning_policy: Optional[TuningPolicy] = None
        elif tuning is None:
            self.tuning_policy = TuningPolicy.from_file()
        elif isinstance(tuning, str):
            self.tuning_policy = TuningPolicy.from_file(tuning)
        else:
            self.tuning_policy = tuning
        self.pool = WarmPool(pool_size, ctx)
        self.memory_budget_bytes = (
            int(memory_budget_bytes)
            if memory_budget_bytes is not None
            else pool_size * 64 * 2**20
        )
        #: ``None`` = unmetered spill (the budget is opt-in).
        self.spill_budget_bytes = (
            int(spill_budget_bytes) if spill_budget_bytes is not None else None
        )
        self._lock = threading.RLock()
        self._jobs: Dict[str, ServiceJob] = {}
        self._queue: "deque[ServiceJob]" = deque()
        self._attempts: Dict[int, _Attempt] = {}
        self._next_num = 1
        self._next_seq = 1
        self._reserved_mem = 0
        self._reserved_spill = 0
        self._stopping = False
        self._closed = False
        self.stats = ServiceStats()
        self._wake_r, self._wake_w = self.pool._ctx.Pipe(duplex=False)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sort-service-scheduler",
            daemon=True,
        )
        self._scheduler.start()
        self._server: Optional[_ControlServer] = None
        if listen is not None:
            self._server = _ControlServer(self, listen)

    # -- client-facing API (any thread) ---------------------------------------

    @property
    def addr(self):
        """The control endpoint ``(host, port)``, or None when not serving."""
        return self._server.addr if self._server is not None else None

    def submit(self, spec: dict) -> str:
        """Queue a sort described by ``spec``; returns the job id.

        Raises :class:`JobRejected` for a job this service can *never*
        run (more workers than the pool, or a cost above a whole
        budget) — distinct from a feasible job that merely has to wait.
        """
        with self._lock:
            if self._stopping:
                raise ServiceError("service is shutting down")
            tuned = suggest_job_knobs(spec, self.tuning_policy)
            if tuned:
                try:
                    native = build_native_job({**spec, **tuned},
                                              self.spill_root)
                except JobRejected:
                    # A suggestion must never reject a job the client's
                    # own spec allows (e.g. a tuned block size tripping
                    # the two-pass feasibility limit at this sizing):
                    # fall back to the untuned spec.
                    tuned = {}
                    native = build_native_job(spec, self.spill_root)
            else:
                native = build_native_job(spec, self.spill_root)
            mem_cost, spill_cost = job_costs(native)
            if native.n_workers > self.pool.size:
                self.stats.rejected += 1
                raise JobRejected(
                    f"job wants {native.n_workers} workers, pool has "
                    f"{self.pool.size}"
                )
            if mem_cost > self.memory_budget_bytes:
                self.stats.rejected += 1
                raise JobRejected(
                    f"job memory cost {mem_cost} exceeds the service "
                    f"budget {self.memory_budget_bytes}"
                )
            if (
                self.spill_budget_bytes is not None
                and spill_cost > self.spill_budget_bytes
            ):
                self.stats.rejected += 1
                raise JobRejected(
                    f"job spill cost {spill_cost} exceeds the service "
                    f"budget {self.spill_budget_bytes}"
                )
            num = self._next_num
            self._next_num += 1
            job_id = f"j{num}"
            native = stamp_identity(native, num, job_id)
            job = ServiceJob(
                id=job_id,
                num=num,
                label=str(spec.get("label", "")),
                job=native,
                mem_cost=mem_cost,
                spill_cost=spill_cost,
                tuned=tuned,
                policy=RestartPolicy(native.max_restarts),
            )
            self._jobs[job_id] = job
            self._queue.append(job)
            self.stats.submitted += 1
            if tuned:
                self.stats.tuned_jobs += 1
            self.stats.note_queue_depth(len(self._queue))
        self._wake()
        return job_id

    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            pos = None
            for i, queued in enumerate(self._queue):
                if queued.id == job_id:
                    pos = i
                    break
            return job.snapshot(queue_position=pos)

    def jobs_snapshot(self) -> List[dict]:
        with self._lock:
            return [
                self._jobs[jid].snapshot()
                for jid in sorted(self._jobs, key=lambda j: self._jobs[j].num)
            ]

    def stats_snapshot(self) -> dict:
        with self._lock:
            return self.stats.snapshot(
                self.pool,
                queue_depth=len(self._queue),
                running=len(self._attempts),
                reserved_mem=self._reserved_mem,
                reserved_spill=self._reserved_spill,
                memory_budget=self.memory_budget_bytes,
                spill_budget=self.spill_budget_bytes,
                tuning_enabled=self.tuning_policy is not None
                and self.tuning_policy.n_sweeps > 0,
            )

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its state after the request.

        A queued job dies immediately; a running job is interrupted and
        lands in CANCELLED once its workers unwind.  A job that already
        finished is left alone (the race goes to the sort).
        """
        with self._lock:
            job = self._get(job_id)
            if job.state in TERMINAL_STATES:
                return job.state
            job.cancel_requested = True
            if job.state == QUEUED:
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass
                self._finish_terminal(job, CANCELLED, "cancelled while queued")
            else:
                for attempt in self._attempts.values():
                    if attempt.job_id == job_id:
                        self._interrupt_attempt(attempt)
            state = job.state
        self._wake()
        return state

    def wait(self, job_id: str, timeout: Optional[float] = None) -> ServiceJob:
        """Block until ``job_id`` reaches a terminal state; returns it."""
        with self._lock:
            job = self._get(job_id)
        if not job.done.wait(timeout):
            raise ServiceError(f"timed out waiting for job {job_id}")
        return job

    def worker_pids(self, job_id: str) -> List[int]:
        """PIDs of the pool workers currently running ``job_id``."""
        with self._lock:
            for attempt in self._attempts.values():
                if attempt.job_id == job_id:
                    return [
                        h.pid
                        for h in attempt.handles.values()
                        if h.busy_seq == attempt.seq
                    ]
        return []

    def close(self, timeout: float = 60.0) -> None:
        """Shut down: cancel everything, drain, stop the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
            while self._queue:
                job = self._queue.popleft()
                job.cancel_requested = True
                self._finish_terminal(job, CANCELLED, "service shut down")
            for attempt in self._attempts.values():
                self._jobs[attempt.job_id].cancel_requested = True
                self._interrupt_attempt(attempt)
        self._wake()
        self._scheduler.join(timeout=timeout)
        if self._server is not None:
            self._server.close()
        self.pool.stop()
        with self._lock:
            for job in self._jobs.values():
                if job.state not in TERMINAL_STATES:
                    self._finish_terminal(job, CANCELLED, "service shut down")
        for conn in (self._wake_r, self._wake_w):
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduler internals (lock held unless noted) -------------------------

    def _get(self, job_id: str) -> ServiceJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"!")
        except (OSError, ValueError):
            pass

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping and not self._attempts:
                    return
                self._try_admit()
                waits = [self._wake_r]
                sentinels = {}
                for handle in self.pool.handles:
                    waits.append(handle.ctrl)
                    sentinels[handle.proc.sentinel] = handle
                waits.extend(sentinels)
            try:
                conn_wait(waits, timeout=0.25)
            except OSError:
                # A pipe was torn down under us (respawn/shutdown race);
                # the state re-check below sorts it out.
                time.sleep(0.01)
            with self._lock:
                while True:
                    try:
                        if not self._wake_r.poll(0):
                            break
                        self._wake_r.recv_bytes()
                    except (OSError, EOFError):
                        break
                for handle in list(self.pool.handles):
                    self._drain_ctrl(handle)
                for handle in list(self.pool.handles):
                    if not handle.proc.is_alive():
                        self._worker_died(handle)
                self._check_deadlines()

    def _drain_ctrl(self, handle: WorkerHandle) -> None:
        while True:
            try:
                if not handle.ctrl.poll(0):
                    return
                msg = handle.ctrl.recv()
            except (OSError, EOFError):
                # Death surfaces through the sentinel pass right after.
                return
            if (
                not isinstance(msg, tuple)
                or len(msg) != 3
                or msg[0] != MSG_RESULT
            ):
                continue
            _verb, seq, payload = msg
            self._route_result(handle, seq, payload)

    def _route_result(self, handle: WorkerHandle, seq: int, payload) -> None:
        rank = handle.job_rank
        if handle.busy_seq == seq:
            handle.mark_idle()
        attempt = self._attempts.get(seq)
        if attempt is None or rank is None or rank not in attempt.outstanding:
            return  # late report from an attempt already torn down
        attempt.outstanding.discard(rank)
        if (
            isinstance(payload, tuple)
            and len(payload) == 5
            and payload[0] == "ok"
        ):
            attempt.results[rank] = payload
        elif (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == "error"
        ):
            self._fail_attempt(attempt, int(payload[1]), str(payload[2]))
        else:
            self._fail_attempt(
                attempt, rank, f"malformed result: {payload!r}"
            )
        if not attempt.outstanding:
            self._finalize_attempt(attempt)

    def _worker_died(self, handle: WorkerHandle) -> None:
        seq, rank = handle.busy_seq, handle.job_rank
        pid, code = handle.pid, handle.proc.exitcode
        handle.mark_idle()
        self.pool.respawn(handle)
        if seq is None:
            return
        attempt = self._attempts.get(seq)
        if attempt is None or rank not in attempt.outstanding:
            return
        attempt.outstanding.discard(rank)
        death = f"pool worker died mid-job (pid {pid}, exit code {code})"
        if attempt.failed and not attempt.killed:
            # A surviving peer's "closed its pipe" CommError may race in
            # ahead of the sentinel; the death is the root cause, so it
            # wins the attribution (unless *we* killed the worker past
            # the deadline grace, where the timeout message stands).
            attempt.fail_rank = rank
            attempt.fail_error = death
        self._fail_attempt(attempt, rank, death)
        if not attempt.outstanding:
            self._finalize_attempt(attempt)

    def _fail_attempt(self, attempt: _Attempt, rank: Optional[int],
                      error: str) -> None:
        if not attempt.failed:
            attempt.failed = True
            attempt.fail_rank = rank
            attempt.fail_error = error
        self._interrupt_attempt(attempt)

    def _interrupt_attempt(self, attempt: _Attempt) -> None:
        if attempt.interrupted:
            return
        attempt.interrupted = True
        for handle in attempt.handles.values():
            if handle.busy_seq == attempt.seq:
                self.pool.interrupt(handle, attempt.seq)

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for attempt in list(self._attempts.values()):
            if now >= attempt.deadline and not attempt.failed:
                self._fail_attempt(
                    attempt, None,
                    f"attempt timed out after "
                    f"{attempt.deadline - attempt.started:.0f}s",
                )
            if now >= attempt.deadline + KILL_GRACE and not attempt.killed:
                attempt.killed = True
                for handle in attempt.handles.values():
                    if (
                        handle.busy_seq == attempt.seq
                        and handle.proc.is_alive()
                    ):
                        handle.proc.terminate()

    def _try_admit(self) -> None:
        """Strict-FIFO admission: the head blocks until it fits.

        ``break`` (never ``continue``) when the head job does not fit —
        that is what makes over-budget combinations *provably*
        serialized and starvation impossible.
        """
        while self._queue and not self._stopping:
            job = self._queue[0]
            if job.cancel_requested:
                self._queue.popleft()
                self._finish_terminal(job, CANCELLED, "cancelled while queued")
                continue
            idle = self.pool.idle_handles()
            if job.job.n_workers > len(idle):
                break
            if self._reserved_mem + job.mem_cost > self.memory_budget_bytes:
                break
            if (
                self.spill_budget_bytes is not None
                and self._reserved_spill + job.spill_cost
                > self.spill_budget_bytes
            ):
                break
            self._queue.popleft()
            self._admit_and_dispatch(job, idle[: job.job.n_workers])

    def _admit_and_dispatch(self, job: ServiceJob,
                            handles: List[WorkerHandle]) -> None:
        now = time.monotonic()
        job.state = ADMITTED
        if job.admitted is None:
            job.admitted = now
            job.admission_wait = now - job.created
            self.stats.note_admission_wait(job.admission_wait)
        self._reserved_mem += job.mem_cost
        self._reserved_spill += job.spill_cost
        seq = self._next_seq
        self._next_seq += 1
        native = job.attempt_job()
        attempt = _Attempt(
            seq=seq,
            job_id=job.id,
            epoch=job.epoch,
            handles=dict(enumerate(handles)),
            outstanding=set(range(native.n_workers)),
            started=now,
            deadline=now + native.timeout + ATTEMPT_GRACE,
        )
        self._attempts[seq] = attempt
        try:
            self.pool.dispatch(native, seq, job.id, handles)
        except Exception as exc:  # a worker died in the dispatch window
            dispatched = {
                rank
                for rank, h in attempt.handles.items()
                if h.busy_seq == seq
            }
            attempt.outstanding = dispatched
            self._fail_attempt(attempt, None, f"dispatch failed: {exc}")
            if not attempt.outstanding:
                self._finalize_attempt(attempt)
            return
        job.state = RUNNING
        if job.started is None:
            job.started = now
        self.stats.dispatches += 1

    def _finalize_attempt(self, attempt: _Attempt) -> None:
        self._attempts.pop(attempt.seq, None)
        # Whatever the outcome, the attempt's shm mesh (if its job ran
        # the shm transport) is done: unlink the segment names now.  A
        # straggler PE still attached keeps its mapping until it closes.
        self.pool.release_mesh(attempt.seq)
        job = self._jobs[attempt.job_id]
        self._reserved_mem = max(0, self._reserved_mem - job.mem_cost)
        self._reserved_spill = max(0, self._reserved_spill - job.spill_cost)
        if attempt.failed:
            if job.cancel_requested:
                self._finish_terminal(job, CANCELLED, "cancelled while running")
            elif job.job.checkpointing and job.policy.record_failure(
                attempt.epoch, attempt.fail_rank, attempt.fail_error
            ):
                # Restart: back to the *front* of the queue at the next
                # epoch — recovery must never starve behind new arrivals.
                self.stats.restarts += 1
                job.epoch = attempt.epoch + 1
                job.suspects = job.policy.suspects()
                job.state = QUEUED
                self._queue.appendleft(job)
            else:
                self._finish_terminal(job, FAILED, attempt.fail_error)
            return
        ordered = [attempt.results[rank] for rank in sorted(attempt.results)]
        result = assemble_result(
            job.attempt_job(), ordered, time.monotonic() - job.started
        )
        result.stats.restarts = job.policy.restarts_used
        result.stats.recovery_events = job.policy.to_dicts()
        report = result.validate()
        if not report.ok:
            self._finish_terminal(
                job, FAILED, "invalid output: " + "; ".join(report.issues)
            )
            return
        job.result = result
        self._finish_terminal(job, DONE, None)

    def _finish_terminal(self, job: ServiceJob, state: str,
                         error: Optional[str]) -> None:
        job.state = state
        job.error = error
        job.finished = time.monotonic()
        if state == DONE:
            self.stats.done += 1
        elif state == FAILED:
            self.stats.failed += 1
            if getattr(job.job, "cleanup_on_abort", False):
                purge_namespace(self.spill_root, job.namespace)
        else:
            self.stats.cancelled += 1
            # A cancelled job's partial spill state is garbage by
            # definition; the namespace makes this surgically safe.
            purge_namespace(self.spill_root, job.namespace)
        job.done.set()


# ----------------------------------------------------------- control server


class _ControlServer:
    """JSON-over-TCP control plane, reusing the framing layer.

    Every request and reply is one :data:`~repro.net.framing.KIND_CTRL`
    frame whose metadata is a JSON object — the service never unpickles
    anything a client sent, so an untrusted client can at worst submit
    absurd specs, which admission rejects.
    """

    def __init__(self, service: SortService, listen: str):
        from ..net.rendezvous import parse_hostport

        host, port = parse_hostport(listen)
        self._service = service
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.addr = self._sock.getsockname()[:2]
        self._closing = False
        self._accepter = threading.Thread(
            target=self._accept_loop, name="sort-service-accept", daemon=True
        )
        self._accepter.start()

    def close(self) -> None:
        self._closing = True
        try:
            self._sock.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="sort-service-conn", daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        from ..native.comm_api import CommError
        from ..net.framing import KIND_CTRL, recv_frame, send_json_frame

        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except CommError:
                    return
                if frame is None:
                    return
                kind, msg, _epoch, _fence, _nbytes = frame
                if kind != KIND_CTRL or not isinstance(msg, dict):
                    send_json_frame(
                        conn, KIND_CTRL,
                        {"ok": False, "error": "expected a CTRL JSON object"},
                    )
                    continue
                try:
                    reply = self._handle(msg)
                except (ServiceError, JobRejected) as exc:
                    reply = {"ok": False, "error": str(exc)}
                except Exception as exc:  # never tear the conn on a bug
                    reply = {"ok": False, "error": f"internal: {exc!r}"}
                send_json_frame(conn, KIND_CTRL, reply)
                if msg.get("cmd") == "shutdown":
                    return
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, msg: dict) -> dict:
        svc = self._service
        cmd = msg.get("cmd")
        if cmd == "ping":
            return {"ok": True, "pong": True}
        if cmd == "submit":
            spec = msg.get("spec")
            if not isinstance(spec, dict):
                raise ServiceError("submit needs a 'spec' object")
            return {"ok": True, "id": svc.submit(spec)}
        if cmd == "status":
            return {"ok": True, "job": svc.status(msg.get("id", ""))}
        if cmd == "jobs":
            return {"ok": True, "jobs": svc.jobs_snapshot()}
        if cmd == "stats":
            return {"ok": True, "stats": svc.stats_snapshot()}
        if cmd == "cancel":
            return {"ok": True, "state": svc.cancel(msg.get("id", ""))}
        if cmd == "result":
            job_id = msg.get("id", "")
            timeout = msg.get("timeout")
            job = svc.wait(
                job_id, float(timeout) if timeout is not None else None
            )
            reply = {"ok": True, "job": job.snapshot()}
            if job.state == DONE and job.result is not None:
                res = job.result
                reply["result"] = {
                    "validation": {
                        "ok": True,
                        "total_keys": sum(
                            m.n_records for m in res.outputs
                        ),
                        "checksum": f"{res.input_checksum:#x}",
                    },
                    "outputs": [
                        {
                            "rank": m.rank,
                            "path": m.path,
                            "n_records": m.n_records,
                        }
                        for m in res.outputs
                    ],
                    "stats": res.stats.to_dict(),
                }
            return reply
        if cmd == "shutdown":
            threading.Thread(
                target=svc.close, name="sort-service-shutdown", daemon=True
            ).start()
            return {"ok": True, "stopping": True}
        raise ServiceError(f"unknown command {cmd!r}")
