"""The warm PE pool: persistent worker processes serving many jobs.

Single-shot runs (:class:`~repro.native.driver.NativeSorter`) fork P
processes per sort and throw them away.  The service instead keeps a
pool of *persistent* workers, each owning two long-lived channels back
to the scheduler:

* a duplex **control pipe** — carries ``("run", seq, job, rank, conns)``
  dispatches down and ``("result", seq, payload)`` reports up, where
  ``payload`` is exactly the tuple a single-shot worker would have sent
  on its result pipe;
* a one-way **interrupt pipe** — the scheduler drops a dispatch
  sequence number in to abort the matching job mid-phase (cancel, peer
  failure, deadline); the worker's :class:`~repro.native.comm.PipeComm`
  polls it between messages and raises
  :class:`~repro.native.comm_api.JobInterrupted`.

The mesh is **fresh per job**: the scheduler builds one duplex pipe per
worker pair at dispatch time and ships each worker its ends *through*
the control pipe (``multiprocessing``'s connection reduction carries
the fds), then closes its own copies.  Reusing mesh pipes across jobs
would let one job's stale bytes corrupt the next; fresh pipes plus the
(job, epoch) wire fence make cross-job delivery structurally
impossible.  What *is* reused — the point of the pool — is the warm
process: an imported interpreter, hot numpy, and the two control
channels.

A worker that dies (chaos kill, crash) is detected by the scheduler via
its process sentinel and replaced with a fresh process under a new
worker id; the pool never shrinks.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..native.comm import PipeComm
from ..native.job import NativeJob
from ..native.worker import _run_phases

__all__ = ["WarmPool", "WorkerHandle", "pool_worker_main"]

#: Control-pipe verbs (parent -> worker).
CMD_RUN = "run"
CMD_STOP = "stop"
#: Control-pipe verbs (worker -> parent).
MSG_RESULT = "result"


class _ResultProxy:
    """Adapts the shared control pipe to the worker result-channel shape.

    :func:`~repro.native.worker._run_phases` reports through an object
    with ``send``; this proxy tags each report with the dispatch
    sequence number so the scheduler can route it to the right attempt.
    ``close`` is a no-op — the control pipe outlives the job.  The
    chaos hooks' raw-corruption entry points (``send_bytes``/``fileno``)
    degrade to a malformed-but-framed report: service chaos kills
    processes, it does not tear the multiplexed control stream.
    """

    def __init__(self, ctrl, seq: int):
        self._ctrl = ctrl
        self._seq = seq

    def send(self, obj) -> None:
        self._ctrl.send((MSG_RESULT, self._seq, obj))

    def send_bytes(self, raw: bytes) -> None:
        self._ctrl.send((MSG_RESULT, self._seq, ("torn", raw)))

    def fileno(self) -> int:
        return self._ctrl.fileno()

    def close(self) -> None:
        pass


def _serve_one(seq, job, job_rank, conns, ctrl, interrupt) -> None:
    """Run one dispatched job on this pool worker, then reset to idle.

    The comm is built over the *fresh* per-job mesh pipes; the interrupt
    channel is armed with this dispatch's sequence number, so a stale
    interrupt for an earlier job drains harmlessly.  Whatever happens —
    success, error report, interrupt — the mesh pipes are closed before
    returning to the command loop; the control and interrupt channels
    persist.
    """
    proxy = _ResultProxy(ctrl, seq)
    try:
        if getattr(job, "transport", "pipe") == "shm":
            from ..native.shm import ShmComm

            comm = ShmComm(
                job_rank,
                job.n_workers,
                conns,
                timeout=job.timeout,
                chaos=getattr(job, "chaos", None),
                pending_sends=getattr(job, "pending_sends", 4),
                job_epoch=getattr(job, "epoch", 0),
                job_tag=getattr(job, "job_tag", 0),
                interrupt=interrupt,
                interrupt_tag=seq,
                own_channel_ends=True,
            )
        else:
            comm = PipeComm(
                job_rank,
                job.n_workers,
                conns,
                timeout=job.timeout,
                chaos=getattr(job, "chaos", None),
                pending_sends=getattr(job, "pending_sends", 4),
                job_epoch=getattr(job, "epoch", 0),
                job_tag=getattr(job, "job_tag", 0),
                interrupt=interrupt,
                interrupt_tag=seq,
            )
    except Exception:
        try:
            proxy.send(("error", job_rank, traceback.format_exc()))
        except Exception:
            pass
        for conn in conns.values():
            try:
                conn.close()
            except Exception:
                pass
        return
    try:
        _run_phases(job_rank, job, comm, proxy, persistent=True)
    finally:
        try:
            comm.close()
        except Exception:
            pass


def pool_worker_main(worker_id: int, ctrl, interrupt) -> None:
    """Persistent pool-worker loop: serve dispatches until told to stop.

    Exits on an explicit ``("stop",)``, on control-pipe EOF (the service
    died), or via ``os._exit`` from an injected chaos kill inside a job.
    """
    while True:
        try:
            cmd = ctrl.recv()
        except (EOFError, OSError):
            return
        if not isinstance(cmd, tuple) or not cmd:
            continue
        if cmd[0] == CMD_STOP:
            return
        if cmd[0] == CMD_RUN:
            _seq, job, job_rank, conns = cmd[1], cmd[2], cmd[3], cmd[4]
            _serve_one(_seq, job, job_rank, conns, ctrl, interrupt)


@dataclass
class WorkerHandle:
    """Scheduler-side view of one pool worker."""

    worker_id: int
    proc: object
    ctrl: object  # service end of the duplex control pipe
    interrupt: object  # service (write) end of the interrupt pipe
    #: Dispatch sequence currently running, or None when idle.
    busy_seq: Optional[int] = None
    job_id: Optional[str] = None
    job_rank: Optional[int] = None
    busy_since: Optional[float] = None
    jobs_run: int = 0
    busy_seconds: float = 0.0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    @property
    def idle(self) -> bool:
        return self.busy_seq is None

    def mark_busy(self, seq: int, job_id: str, rank: int) -> None:
        self.busy_seq = seq
        self.job_id = job_id
        self.job_rank = rank
        self.busy_since = time.monotonic()

    def mark_idle(self) -> None:
        if self.busy_since is not None:
            self.busy_seconds += time.monotonic() - self.busy_since
            self.jobs_run += 1
        self.busy_seq = None
        self.job_id = None
        self.job_rank = None
        self.busy_since = None


class WarmPool:
    """A fixed-size pool of persistent worker processes."""

    def __init__(self, size: int, ctx=None):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if ctx is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._ctx = ctx
        self.size = size
        self._next_worker_id = 0
        self.respawns = 0
        #: Live shm meshes by dispatch seq: the scheduler owns the
        #: segment names and unlinks them when the attempt finalizes
        #: (success, failure, or service shutdown) — the no-/dev/shm-leak
        #: guarantee for pool jobs.
        self._shm_meshes: Dict[int, object] = {}
        # Start the resource tracker *before* forking any worker: a pool
        # PE that later attaches a shm ring must inherit this process's
        # tracker (registrations are then idempotent set-adds and the
        # scheduler's unlink clears them) rather than lazily spawn its
        # own, which would warn about "leaked" segments at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - non-POSIX fallback
            pass
        self.handles: List[WorkerHandle] = [self._spawn() for _ in range(size)]

    def _spawn(self) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        ctrl_parent, ctrl_child = self._ctx.Pipe(duplex=True)
        intr_read, intr_write = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=pool_worker_main,
            args=(worker_id, ctrl_child, intr_read),
            name=f"pool-pe-{worker_id}",
            daemon=True,
        )
        proc.start()
        # The parent's copies of the child-side ends must close so a dead
        # worker turns into EOF/sentinel wakeups, never a silent hang.
        ctrl_child.close()
        intr_read.close()
        return WorkerHandle(
            worker_id=worker_id, proc=proc, ctrl=ctrl_parent,
            interrupt=intr_write,
        )

    def idle_handles(self) -> List[WorkerHandle]:
        return [h for h in self.handles if h.idle and h.proc.is_alive()]

    def dispatch(self, job: NativeJob, seq: int, job_id: str,
                 handles: List[WorkerHandle]) -> None:
        """Ship ``job`` to ``handles`` (rank = position in the list).

        Builds the fresh pairwise mesh, sends each worker its dispatch,
        and closes the scheduler's copies of every mesh end — after
        which a worker death propagates to its peers as pipe EOF.
        """
        P = job.n_workers
        if len(handles) != P:
            raise ValueError(f"job wants {P} workers, got {len(handles)}")
        if getattr(job, "transport", "pipe") == "shm":
            from ..native.shm import DEFAULT_RING_BYTES, create_shm_mesh

            mesh = create_shm_mesh(
                self._ctx, P,
                ring_bytes=getattr(job, "ring_bytes", DEFAULT_RING_BYTES),
                job_tag=getattr(job, "job_tag", 0),
            )
            # Registered before the sends: whatever happens mid-dispatch,
            # release_mesh(seq) can always unlink the segments.
            self._shm_meshes[seq] = mesh
            try:
                for rank, handle in enumerate(handles):
                    # The channel specs ride the control pipe like pipe
                    # ends do: the doorbell fds via connection reduction,
                    # the ring segments by name (attached in the worker).
                    handle.ctrl.send(
                        (CMD_RUN, seq, job, rank, mesh.channels[rank])
                    )
                    handle.mark_busy(seq, job_id, rank)
            finally:
                mesh.close_parent_ends()
            return
        conns: List[Dict[int, object]] = [dict() for _ in range(P)]
        for i in range(P):
            for j in range(i + 1, P):
                end_i, end_j = self._ctx.Pipe(duplex=True)
                conns[i][j] = end_i
                conns[j][i] = end_j
        try:
            for rank, handle in enumerate(handles):
                handle.ctrl.send((CMD_RUN, seq, job, rank, conns[rank]))
                handle.mark_busy(seq, job_id, rank)
        finally:
            for per_rank in conns:
                for conn in per_rank.values():
                    try:
                        conn.close()
                    except OSError:
                        pass

    def release_mesh(self, seq: int) -> None:
        """Unlink the shm mesh of dispatch ``seq``, if it had one.

        Idempotent, called from the single attempt-finalization point in
        the scheduler; a pipe-transport dispatch is a no-op.  POSIX keeps
        the memory alive for workers still attached (a straggler rank
        finishing an already-failed attempt), so unlinking at finalize is
        always safe.
        """
        mesh = self._shm_meshes.pop(seq, None)
        if mesh is not None:
            mesh.unlink()

    def interrupt(self, handle: WorkerHandle, seq: int) -> None:
        """Ask ``handle`` to abort dispatch ``seq`` (best effort)."""
        try:
            handle.interrupt.send(seq)
        except (OSError, ValueError):
            pass

    def respawn(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker in place; returns the new handle."""
        idx = self.handles.index(handle)
        for conn in (handle.ctrl, handle.interrupt):
            try:
                conn.close()
            except OSError:
                pass
        handle.proc.join(timeout=5.0)
        fresh = self._spawn()
        self.handles[idx] = fresh
        self.respawns += 1
        return fresh

    def stop(self) -> None:
        """Tear the pool down: interrupt, stop, escalate to SIGKILL."""
        for seq in list(self._shm_meshes):
            self.release_mesh(seq)
        for handle in self.handles:
            if handle.busy_seq is not None:
                self.interrupt(handle, handle.busy_seq)
        for handle in self.handles:
            try:
                handle.ctrl.send((CMD_STOP,))
            except (OSError, ValueError):
                pass
            # Closing the interrupt write-end makes any still-running
            # job abort with "interrupt channel closed" at its next poll.
            try:
                handle.interrupt.close()
            except OSError:
                pass
        for handle in self.handles:
            handle.proc.join(timeout=5.0)
        for handle in self.handles:
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():  # pragma: no cover
                handle.proc.kill()
                handle.proc.join(timeout=2.0)
            try:
                handle.ctrl.close()
            except OSError:
                pass
