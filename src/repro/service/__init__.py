"""Sort-as-a-service: a persistent multi-job scheduler over a warm PE pool.

The native backend (:mod:`repro.native`) runs one sort per process
fleet; this package keeps the fleet alive and multiplexes many sorts
over it:

* :mod:`repro.service.pool` — persistent worker processes with
  per-dispatch fresh meshes and an interrupt channel;
* :mod:`repro.service.jobs` — the client-facing job spec, cost model
  and per-job state machine;
* :mod:`repro.service.daemon` — :class:`SortService`: FIFO admission
  over memory/spill budgets, per-job restart supervision, worker
  respawn, and the JSON-over-TCP control plane;
* :mod:`repro.service.client` — :class:`SortClient`, the wire client;
* :mod:`repro.service.cli` — ``python -m repro serve | submit | jobs``.

See ``docs/SERVICE.md`` for the design rationale.
"""

from .client import SortClient
from .daemon import SortService
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SPEC_FIELDS,
    JobRejected,
    ServiceError,
)

__all__ = [
    "SortService",
    "SortClient",
    "ServiceError",
    "JobRejected",
    "SPEC_FIELDS",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]
