"""Phase two (b) of CANONICALMERGESORT: the external all-to-all
(paper Section IV-C).

After multiway selection, every node knows, for each run, the exact range
of the run it must end up with.  Most of that data is already local when
randomization did its job; the rest is exchanged here.  Two complications
drive the design (both from the paper):

* a node may have to communicate more data than fits in memory — the
  exchange is split into ``k`` internal sub-operations, each sending the
  next (almost equal) part of every receiver's data, assembled run by run
  ("consuming all the participating data of run i before switching to
  run i+1") so one buffer block per active destination suffices;
* received sub-messages end in *partially filled blocks* that must be
  flushed to disk at every sub-operation boundary — the ``O(R·P')``
  block overhead of the paper's I/O bound ``2V/(PB) + O(RP')``, and the
  temporary space overhead of the in-place analysis (Section IV-E).

Block accounting: a local input block is *kept* (zero I/O) when it lies
entirely inside the node's own target range — the common case for random
or randomized inputs — otherwise it is read once ("touched"), its pieces
are routed, and the node's own partial data is rewritten.  Everything
read or written here carries the ``all_to_all`` tag: Figure 5 plots
exactly this volume divided by N.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..em.context import ExternalMemory
from ..em.file import DistributedRun
from ..em.writebuffer import SegmentBlock, StreamBlockWriter
from .config import SortConfig
from .stats import SortStats

__all__ = ["all_to_all_phase", "SegmentBlock", "TAG"]

TAG = "all_to_all"


def _sub_slices(
    spans: List[Tuple[int, int, int]], k: int, sub: int
) -> List[Tuple[int, int, int]]:
    """The ``sub``-th of ``k`` equal parts of a destination's span list.

    ``spans`` are (run, lo, hi) pieces in run-major order; the part
    boundaries cut by key count, preserving span order.
    """
    total = sum(hi - lo for _r, lo, hi in spans)
    if total == 0:
        return []
    start = sub * total // k
    end = (sub + 1) * total // k
    out: List[Tuple[int, int, int]] = []
    acc = 0
    for r, lo, hi in spans:
        n = hi - lo
        s = max(lo, lo + start - acc)
        e = min(hi, lo + end - acc)
        if s < e:
            out.append((r, s, e))
        acc += n
    return out


def all_to_all_phase(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    runs: List[DistributedRun],
    splits: List[List[int]],
) -> Generator:
    """SPMD generator; returns this node's per-run segments.

    ``splits[i][r]`` is the run-``r`` global position where rank ``i``'s
    segment begins (``splits[P][r]`` is the run length).  The return value
    is a list over runs of ordered :class:`SegmentBlock` lists forming the
    node's sorted segment of each run.
    """
    me = rank
    n_nodes = cluster.n_nodes
    comm = cluster.comm
    store = em.store(me)
    be = config.block_elems
    bpk = config.bytes_per_key
    n_runs = len(runs)

    # ---- geometry: what stays, what goes where -----------------------------
    send_spans: Dict[int, List[Tuple[int, int, int]]] = {
        d: [] for d in range(n_nodes) if d != me
    }
    keep_range: Dict[int, Tuple[int, int]] = {}
    total_send = 0
    total_recv = 0
    for r, run in enumerate(runs):
        piece = run.pieces[me]
        off = run.offsets[me]
        for d in range(n_nodes):
            lo = max(splits[d][r], off)
            hi = min(splits[d + 1][r], off + piece.n_keys)
            if lo >= hi:
                continue
            a, b = lo - off, hi - off
            if d == me:
                keep_range[r] = (a, b)
            else:
                send_spans[d].append((r, a, b))
                total_send += b - a
        seg_size = splits[me + 1][r] - splits[me][r]
        local = keep_range.get(r, (0, 0))
        total_recv += seg_size - (local[1] - local[0])

    # ---- number of sub-operations (collective) --------------------------------
    budget = max(be, int(config.alltoall_mem_fraction * config.piece_keys(cluster.spec)))
    my_k = max(1, math.ceil(max(total_send, total_recv) / budget))
    k = yield comm.allreduce(me, my_k, max)
    stats.add_counter(me, "alltoall_subops", k)
    stats.add_counter(me, "alltoall_sent_keys", total_send)

    # ---- block classification ---------------------------------------------------
    # kept_full[r]: indices of piece blocks fully inside the keep range.
    kept_full: Dict[int, List[int]] = {}
    touched: Dict[Tuple[int, int], bool] = {}  # (run, block idx) -> needs read
    for r, run in enumerate(runs):
        piece = run.pieces[me]
        a, b = keep_range.get(r, (0, 0))
        fulls: List[int] = []
        for i in range(len(piece.blocks)):
            s = piece.block_start(i)
            e = s + piece.counts[i]
            if a <= s and e <= b:
                fulls.append(i)
            else:
                touched[(r, i)] = True
        kept_full[r] = fulls

    # Which sub-operation last uses each touched block (for buffer reuse).
    last_use: Dict[Tuple[int, int], int] = {}
    for sub in range(k):
        for d, spans in send_spans.items():
            for r, lo, hi in _sub_slices(spans, k, sub):
                piece = runs[r].pieces[me]
                i0, _w = piece.block_of(lo)
                i1, _w = piece.block_of(hi - 1)
                for i in range(i0, i1 + 1):
                    last_use[(r, i)] = sub
    # Straddling blocks with a kept part may never appear in send slices
    # of this node (e.g. P' = 0); they still must be read and rewritten.
    for key in touched:
        last_use.setdefault(key, 0)

    # ---- execution -----------------------------------------------------------------
    outstanding: List = []
    max_out = config.resolved_write_buffers(cluster.spec)
    block_buf: Dict[Tuple[int, int], np.ndarray] = {}
    writers: Dict[Tuple[int, int], StreamBlockWriter] = {}
    head_part: Dict[int, List[SegmentBlock]] = {r: [] for r in range(n_runs)}
    tail_part: Dict[int, List[SegmentBlock]] = {r: [] for r in range(n_runs)}

    def read_blocks(keys_needed: List[Tuple[int, int]]) -> Generator:
        """Read missing blocks (elevator order), extracting kept partials."""
        missing = [
            key for key in dict.fromkeys(keys_needed) if key not in block_buf
        ]
        missing.sort(
            key=lambda key: (
                runs[key[0]].pieces[me].blocks[key[1]].disk,
                runs[key[0]].pieces[me].blocks[key[1]].slot,
            )
        )
        inflight: List[Tuple[Tuple[int, int], object]] = []
        for key in missing:
            r, i = key
            piece = runs[r].pieces[me]
            inflight.append((key, store.read(piece.blocks[i], tag=TAG)))
            if len(inflight) > max_out:
                got_key, ev = inflight.pop(0)
                block_buf[got_key] = yield ev
        for got_key, ev in inflight:
            block_buf[got_key] = yield ev
        # Extract and rewrite this node's partial data the first time the
        # straddling block is available.
        for key in missing:
            extract_kept_partial(key)

    def extract_kept_partial(key: Tuple[int, int]) -> None:
        r, i = key
        a, b = keep_range.get(r, (0, 0))
        if a >= b:
            return
        piece = runs[r].pieces[me]
        s = piece.block_start(i)
        e = s + piece.counts[i]
        lo = max(a, s)
        hi = min(b, e)
        if lo >= hi:
            return
        if a <= s and e <= b:
            return  # fully kept block, never touched
        part = block_buf[key][lo - s : hi - s]
        bid = store.allocate()
        seg = SegmentBlock(bid, len(part), int(part[0]))
        outstanding.append(store.write(bid, part, tag=TAG))
        stats.add_counter(me, "alltoall_partial_blocks")
        if s < a:  # the block straddles the *head* of my range
            head_part[r].append(seg)
        else:
            tail_part[r].append(seg)

    def extract_range(r: int, lo: int, hi: int) -> np.ndarray:
        """Keys of piece-local range [lo, hi) from buffered blocks."""
        piece = runs[r].pieces[me]
        i0, w0 = piece.block_of(lo)
        i1, w1 = piece.block_of(hi - 1)
        parts = []
        for i in range(i0, i1 + 1):
            data = block_buf[(r, i)]
            s = w0 if i == i0 else 0
            e = (w1 + 1) if i == i1 else len(data)
            parts.append(data[s:e])
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def needed_for(sub: int, slices_by_dest) -> List[Tuple[int, int]]:
        """Blocks a sub-operation's send slices (and rewrites) require."""
        needed: List[Tuple[int, int]] = []
        # On the first sub-operation, also pull in straddling blocks that
        # no send slice covers (pure keep-partial rewrites).
        if sub == 0:
            needed.extend(key for key, s in last_use.items() if s == 0)
        for _d, slices in slices_by_dest.items():
            for r, lo, hi in slices:
                piece = runs[r].pieces[me]
                i0, _ = piece.block_of(lo)
                i1, _ = piece.block_of(hi - 1)
                needed.extend((r, i) for i in range(i0, i1 + 1))
        return needed

    def route_received(recv) -> Generator:
        """Append received (run, keys) streams to their writers and flush."""
        for src in range(n_nodes):
            if src == me or not recv[src]:
                continue
            for r, keys in recv[src]:
                writer = writers.get((r, src))
                if writer is None:
                    writer = StreamBlockWriter(store, TAG, outstanding, max_out)
                    writers[(r, src)] = writer
                yield from writer.add(keys)
        # Sub-operation boundary: flush partially filled blocks.
        for writer in writers.values():
            yield from writer.flush()

    all_slices = [
        {d: _sub_slices(spans, k, sub) for d, spans in send_spans.items()}
        for sub in range(k)
    ]
    write_proc = None
    # With overlapping enabled, the reads of sub-operation ``sub+1`` run
    # while ``sub`` is still exchanging and writing (Section IV-E); the
    # memory cost is one extra sub-operation's worth of buffers, which the
    # ``alltoall_mem_fraction`` budget leaves room for.
    read_proc = None
    if config.overlap and k > 0:
        read_proc = cluster.sim.process(
            read_blocks(needed_for(0, all_slices[0])), name=f"a2a-read0@{me}"
        )

    for sub in range(k):
        slices_by_dest = all_slices[sub]
        payload: List[Optional[List[Tuple[int, np.ndarray]]]] = [None] * n_nodes
        payload_bytes = [0.0] * n_nodes
        if config.overlap:
            yield read_proc
            read_proc = (
                cluster.sim.process(
                    read_blocks(needed_for(sub + 1, all_slices[sub + 1])),
                    name=f"a2a-read{sub + 1}@{me}",
                )
                if sub + 1 < k
                else None
            )
        else:
            yield from read_blocks(needed_for(sub, slices_by_dest))

        for d, slices in slices_by_dest.items():
            msg = [(r, extract_range(r, lo, hi)) for r, lo, hi in slices]
            payload[d] = msg
            payload_bytes[d] = sum(len(keys) for _r, keys in msg) * bpk
        for d in range(n_nodes):
            if payload[d] is None:
                payload[d] = []
        recv, _recv_bytes = yield comm.alltoallv(me, payload, payload_bytes)

        # Drop buffered blocks whose last use was this sub-operation.
        for key in [key for key, s in last_use.items() if s == sub]:
            block_buf.pop(key, None)

        # Route received streams into per-(run, source) writers; with
        # overlapping on, this runs while the next sub-operation reads and
        # exchanges (stream order is preserved by chaining the routers).
        if config.overlap:
            if write_proc is not None:
                yield write_proc
            write_proc = cluster.sim.process(
                route_received(recv), name=f"a2a-write{sub}@{me}"
            )
        else:
            yield from route_received(recv)

    if write_proc is not None:
        yield write_proc
    for ev in outstanding:
        yield ev
    del outstanding[:]

    # Free every touched source block (their data has been routed).
    for (r, i) in touched:
        store.free(runs[r].pieces[me].blocks[i])

    # ---- assemble the per-run segments ------------------------------------------
    segments: List[List[SegmentBlock]] = []
    for r, run in enumerate(runs):
        piece = run.pieces[me]
        seg: List[SegmentBlock] = []
        for src in range(n_nodes):
            if src == me:
                seg.extend(head_part[r])
                for i in kept_full[r]:
                    seg.append(
                        SegmentBlock(
                            piece.blocks[i],
                            piece.counts[i],
                            int(piece.first_keys[i]),
                        )
                    )
                seg.extend(tail_part[r])
            else:
                writer = writers.get((r, src))
                if writer is not None:
                    seg.extend(writer.blocks)
        segments.append(seg)
    partials = sum(w.partial_blocks for w in writers.values())
    stats.add_counter(me, "alltoall_recv_partial_blocks", partials)
    return segments
