"""CANONICALMERGESORT: the paper's main algorithm, orchestrated.

Ties the four phases together exactly as Figure 1 of the paper depicts:
run formation → multiway selection → redistribution ("hopefully
negligible") → local merging, with phase barriers so the per-phase wall
times are comparable across PEs (the quantities Figures 2, 4 and 6
stack).

The result satisfies the paper's canonical output specification: *PE i
gets the elements of ranks (i−1)·N/P+1 .. i·N/P*, striped over its local
disks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster.cluster import Cluster
from ..em.block import BID
from ..em.context import ExternalMemory
from ..em.file import LocalRunPiece
from .all_to_all import all_to_all_phase
from .config import SortConfig
from .merge_phase import merge_phase
from .run_formation import run_formation
from .selection_phase import selection_phase
from .stats import PhaseTimer, SortStats

__all__ = ["CanonicalMergeSort", "SortResult"]


@dataclass
class SortResult:
    """Outcome of one distributed external sort."""

    config: SortConfig
    n_nodes: int
    stats: SortStats
    #: Per-node sorted output (block-resident run pieces, rank order).
    output: List[LocalRunPiece]
    #: Number of global runs formed in phase one (the paper's R).
    n_runs: int

    def output_keys(self, em: ExternalMemory) -> List[np.ndarray]:
        """Materialize each node's sorted output keys (validation only)."""
        out = []
        for rank, piece in enumerate(self.output):
            store = em.store(rank)
            if piece.blocks:
                out.append(np.concatenate([store.peek(bid) for bid in piece.blocks]))
            else:
                out.append(np.empty(0, dtype=np.uint64))
        return out


class CanonicalMergeSort:
    """Two-pass distributed-memory external mergesort (paper Section IV)."""

    #: Human-readable algorithm name used by the benchmark harness.
    name = "CanonicalMergeSort"

    def __init__(self, cluster: Cluster, config: SortConfig):
        config.validate(cluster.spec, cluster.n_nodes)
        self.cluster = cluster
        self.config = config

    def sort(self, em: ExternalMemory, inputs: List[List[BID]]) -> SortResult:
        """Sort the pre-placed input blocks; returns stats and output.

        ``inputs[rank]`` lists the input blocks on each node (created by a
        workload generator).  Runs the SPMD processes on the cluster's
        simulator to completion.
        """
        if len(inputs) != self.cluster.n_nodes:
            raise ValueError(
                f"inputs for {len(inputs)} nodes, cluster has {self.cluster.n_nodes}"
            )
        cluster = self.cluster
        config = self.config
        stats = SortStats(config, cluster.n_nodes)
        n_runs_holder: List[int] = [0]

        def pe_main(rank: int, cluster: Cluster):
            comm = cluster.comm
            yield comm.barrier(rank)

            if config.n_runs(cluster.spec) == 1:
                # Special optimization for N <= M (paper §IV-E): a single
                # run is the final output — 2 I/Os per block, no selection
                # or redistribution.  Blocks are sorted as they arrive from
                # disk, overlapping computation with I/O.
                output = yield from self._single_run(
                    rank, cluster, em, stats, inputs[rank]
                )
                n_runs_holder[0] = 1
                return output

            timer = PhaseTimer(stats, rank, "run_formation", cluster.sim)
            runs = yield from run_formation(
                rank, cluster, em, config, stats, inputs[rank]
            )
            timer.stop()
            n_runs_holder[0] = len(runs)
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "selection", cluster.sim)
            splits = yield from selection_phase(
                rank, cluster, em, config, stats, runs
            )
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "all_to_all", cluster.sim)
            segments = yield from all_to_all_phase(
                rank, cluster, em, config, stats, runs, splits
            )
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "merge", cluster.sim)
            output = yield from merge_phase(
                rank, cluster, em, config, stats, segments
            )
            timer.stop()
            return output

        started = cluster.sim.now
        output = cluster.run_spmd(pe_main)
        stats.total_time = cluster.sim.now - started
        if n_runs_holder[0] == 1:
            stats.phases = ["run_formation", "merge"]
        stats.collect_io(cluster)
        for rank in range(cluster.n_nodes):
            stats.peak_blocks[rank] = em.store(rank).peak_blocks
        return SortResult(
            config=config,
            n_nodes=cluster.n_nodes,
            stats=stats,
            output=output,
            n_runs=n_runs_holder[0],
        )

    def _single_run(self, rank, cluster, em, stats, input_blocks):
        """In-memory fast path for N <= M (paper §IV-E, MinuteSort regime).

        Each block is sorted immediately after it is read (overlapping the
        remaining disk reads); the locally sorted blocks are merged, the
        run is split and exchanged exactly once, and each rank writes its
        final piece — two I/Os per block total.
        """
        import numpy as np

        from ..em.file import write_piece
        from ..records.arrays import merge_sorted_arrays
        from .internal_sort import distributed_sort_run

        config = self.config
        node = cluster.nodes[rank]
        store = em.store(rank)
        comm = cluster.comm

        timer = PhaseTimer(stats, rank, "run_formation", cluster.sim)
        depth = config.resolved_write_buffers(cluster.spec)
        arrays = []
        inflight = []
        idx = 0
        while idx < len(input_blocks) or inflight:
            while idx < len(input_blocks) and len(inflight) < depth:
                bid = input_blocks[idx]
                inflight.append((bid, store.read(bid, tag="run_formation")))
                idx += 1
            bid, ev = inflight.pop(0)
            keys = yield ev
            store.free(bid)
            arrays.append(np.sort(keys))
            yield node.sort_compute(
                config.keys_to_elements(len(keys)),
                config.element.elem_bytes,
                tag="run_formation",
            )
        local = merge_sorted_arrays(arrays)
        yield node.merge_compute(
            config.keys_to_elements(len(local)),
            arity=max(2, len(arrays)),
            elem_bytes=config.element.elem_bytes,
            tag="run_formation",
        )
        timer.stop()
        yield comm.barrier(rank)

        timer = PhaseTimer(stats, rank, "merge", cluster.sim)
        piece_keys = yield from distributed_sort_run(
            rank, cluster, config, stats, local, "merge", presorted=True
        )
        piece = yield from write_piece(
            store,
            piece_keys,
            tag="merge",
            sample_every=config.resolved_sample_every,
            max_outstanding=depth,
        )
        timer.stop()
        return piece
