"""Per-phase, per-PE statistics.

The paper's evaluation plots exactly these quantities:

* Figures 2, 4, 6 — per-phase *wall-clock* times, stacked over P;
* Figure 3 — per-PE wall-clock **and** I/O time for every phase (the grey
  gap showing run formation is not fully I/O-bound);
* Figure 5 — all-to-all I/O volume divided by N.

Phase wall times are recorded by the SPMD code between barriers; disk
busy time and byte volumes are attributed to phases through request tags,
so asynchronous I/O that completes after a phase boundary still counts
toward the phase that issued it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.cluster import Cluster
from .config import PHASES, SortConfig

__all__ = ["PhaseStat", "SortStats", "PhaseTimer"]


@dataclass
class PhaseStat:
    """One node's view of one phase."""

    wall: float = 0.0
    #: Busy time of the node's most loaded disk for this phase — the
    #: phase's effective I/O time under RAID-0 (Figure 3's I/O bars).
    io: float = 0.0
    #: Sum of disk busy time over all local disks (utilization analysis).
    io_total: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    compute: float = 0.0

    @property
    def io_bytes(self) -> float:
        return self.bytes_read + self.bytes_written


class SortStats:
    """Statistics of one distributed sort execution."""

    def __init__(self, config: SortConfig, n_nodes: int):
        self.config = config
        self.n_nodes = n_nodes
        self.phases: List[str] = list(PHASES)
        self.per_node: List[Dict[str, PhaseStat]] = [
            {phase: PhaseStat() for phase in PHASES} for _ in range(n_nodes)
        ]
        self.counters: List[Dict[str, float]] = [dict() for _ in range(n_nodes)]
        self.total_time = 0.0
        self.network_bytes = 0.0
        self.peak_blocks: List[int] = [0] * n_nodes
        #: Phase intervals (rank, phase, start, end) in simulated seconds,
        #: recorded by :class:`PhaseTimer` — the raw data behind
        #: :meth:`timeline` (a per-PE Gantt like the paper's Figure 3).
        self.intervals: List[tuple] = []

    # -- recording ---------------------------------------------------------------

    def record_wall(self, rank: int, phase: str, seconds: float) -> None:
        self._stat(rank, phase).wall += seconds

    def add_counter(self, rank: int, name: str, value: float = 1.0) -> None:
        c = self.counters[rank]
        c[name] = c.get(name, 0.0) + value

    def _stat(self, rank: int, phase: str) -> PhaseStat:
        stats = self.per_node[rank]
        if phase not in stats:
            stats[phase] = PhaseStat()
            if phase not in self.phases:
                self.phases.append(phase)
        return stats[phase]

    def collect_io(self, cluster: Cluster) -> None:
        """Pull disk-tag attributions out of the cluster (run at the end)."""
        for rank, node in enumerate(cluster.nodes):
            for phase in self.phases:
                stat = self._stat(rank, phase)
                stat.io = node.max_disk_busy_time_for(phase)
                stat.io_total = node.disk_busy_time_for(phase)
                stat.bytes_read = sum(
                    d.read_bytes_by_tag.get(phase, 0.0) for d in node.disks
                )
                stat.bytes_written = sum(
                    d.write_bytes_by_tag.get(phase, 0.0) for d in node.disks
                )
                stat.compute = node.compute_by_tag.get(phase, 0.0)
        self.network_bytes = cluster.total_network_bytes

    # -- aggregation ---------------------------------------------------------------

    def wall_max(self, phase: str) -> float:
        """Slowest PE's wall time for ``phase`` (what a stacked plot shows)."""
        return max(self.per_node[r][phase].wall for r in range(self.n_nodes))

    def wall_avg(self, phase: str) -> float:
        return sum(self.per_node[r][phase].wall for r in range(self.n_nodes)) / self.n_nodes

    def io_max(self, phase: str) -> float:
        return max(self.per_node[r][phase].io for r in range(self.n_nodes))

    def phase_bytes(self, phase: str) -> float:
        """Total disk traffic (read + write) of a phase across the machine."""
        return sum(self.per_node[r][phase].io_bytes for r in range(self.n_nodes))

    def counter_total(self, name: str) -> float:
        return sum(c.get(name, 0.0) for c in self.counters)

    @property
    def total_io_bytes(self) -> float:
        return sum(self.phase_bytes(phase) for phase in self.phases)

    #: Phases whose duration does *not* scale with data volume.  Multiway
    #: selection touches O(R · P · log B) blocks regardless of N (the very
    #: property that makes it "negligible" in the paper), so its simulated
    #: time is already the paper-scale time.  Every bulk phase (run
    #: formation, all-to-all, merging, baseline distribution passes…)
    #: scales with the represented volume.
    VOLUME_INDEPENDENT_PHASES = frozenset({"selection"})

    def scaled_seconds(self, seconds: float, phase: Optional[str] = None) -> float:
        """Convert simulated seconds to estimated paper-scale seconds."""
        if phase is not None and phase in self.VOLUME_INDEPENDENT_PHASES:
            return seconds
        return seconds * self.config.downscale

    def scaled_wall_max(self, phase: str) -> float:
        return self.scaled_seconds(self.wall_max(phase), phase)

    @property
    def scaled_total_time(self) -> float:
        """Estimated paper-scale end-to-end time.

        The sum of the per-phase scaled maxima — the same quantity the
        paper's stacked phase plots (Figures 2, 4, 6) display.
        """
        return sum(self.scaled_wall_max(phase) for phase in self.phases)

    def to_dict(self) -> Dict:
        """Serializable snapshot of every statistic (for JSON export)."""
        return {
            "n_nodes": self.n_nodes,
            "downscale": self.config.downscale,
            "total_time_simulated": self.total_time,
            "total_time_scaled": self.scaled_total_time,
            "network_bytes": self.network_bytes,
            "peak_blocks": list(self.peak_blocks),
            "phases": {
                phase: {
                    "wall_max": self.wall_max(phase),
                    "wall_scaled": self.scaled_wall_max(phase),
                    "io_max": self.io_max(phase),
                    "bytes": self.phase_bytes(phase),
                }
                for phase in self.phases
            },
            "per_node": [
                {
                    phase: {
                        "wall": stat.wall,
                        "io": stat.io,
                        "bytes_read": stat.bytes_read,
                        "bytes_written": stat.bytes_written,
                        "compute": stat.compute,
                    }
                    for phase, stat in node_stats.items()
                }
                for node_stats in self.per_node
            ],
            "counters": [dict(c) for c in self.counters],
            "intervals": [list(iv) for iv in self.intervals],
        }

    def save_json(self, path: str) -> str:
        """Write :meth:`to_dict` as JSON; returns the path."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    def timeline(self, width: int = 72) -> str:
        """ASCII Gantt chart of the phases per PE.

        One row per PE, one column per time slice; each cell shows the
        initial of the phase active there (``r``/``s``/``a``/``m`` for the
        canonical phases, ``.`` for idle/barrier wait).  The textual
        cousin of the paper's Figure 3.
        """
        if not self.intervals:
            return "(no phase intervals recorded)"
        t_end = max(end for _r, _p, _s, end in self.intervals)
        if t_end <= 0:
            return "(empty timeline)"
        grid = [["."] * width for _ in range(self.n_nodes)]
        for rank, phase, start, end in self.intervals:
            a = int(start / t_end * width)
            b = max(a + 1, int(end / t_end * width))
            for x in range(a, min(b, width)):
                grid[rank][x] = phase[0]
        legend = ", ".join(
            f"{phase[0]}={phase}" for phase in self.phases
        )
        lines = [f"timeline over {self.scaled_seconds(t_end):,.1f} s "
                 f"(paper scale; {legend}, .=wait)"]
        for rank in range(self.n_nodes):
            lines.append(f"PE{rank:>3} |{''.join(grid[rank])}|")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable per-phase summary (paper-scale seconds)."""
        lines = [
            f"P={self.n_nodes}  total {self.scaled_total_time:9.1f} s "
            f"(simulated {self.total_time:9.3f} s, downscale {self.config.downscale:g})"
        ]
        for phase in self.phases:
            wall = self.scaled_wall_max(phase)
            io = self.scaled_seconds(self.io_max(phase), phase)
            vol = self.phase_bytes(phase) * self.config.downscale
            lines.append(
                f"  {phase:<14} wall {wall:9.1f} s   io {io:9.1f} s   "
                f"volume {vol / 1e9:10.2f} GB"
            )
        lines.append(
            f"  network        {self.network_bytes * self.config.downscale / 1e9:10.2f} GB"
        )
        return "\n".join(lines)


class PhaseTimer:
    """Records the wall time of a phase for one rank.

    Usage inside SPMD generators::

        timer = PhaseTimer(stats, rank, "run_formation", cluster.sim)
        ...  # phase body
        timer.stop()
    """

    def __init__(self, stats: SortStats, rank: int, phase: str, sim) -> None:
        self.stats = stats
        self.rank = rank
        self.phase = phase
        self.sim = sim
        self.started_at = sim.now
        self._stopped = False

    def stop(self) -> float:
        """End the phase; returns (and records) its wall duration."""
        if self._stopped:
            raise RuntimeError(f"phase {self.phase!r} timer stopped twice")
        self._stopped = True
        wall = self.sim.now - self.started_at
        self.stats.record_wall(self.rank, self.phase, wall)
        self.stats.intervals.append(
            (self.rank, self.phase, self.started_at, self.sim.now)
        )
        return wall
