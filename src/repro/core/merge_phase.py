"""Phase three of CANONICALMERGESORT: local multiway merging.

Every node merges its R run segments into its final output — "each
element is read and written once, no communication is involved in this
phase".  The implementation follows Section III's merging machinery
(which phase three inherits):

* the *prediction sequence* — blocks ordered by their smallest key —
  determines the order blocks are needed in;
* blocks are prefetched into a bounded buffer pool following the optimal
  duality-based schedule of Appendix A (or plain prediction order when
  ``optimal_prefetch`` is off), with the fetcher running as a separate
  simulation process so reads overlap merging;
* batches of arrived blocks are merged up to the *safe boundary* (the
  smallest first-key among not-yet-arrived blocks); elements above the
  boundary stay buffered — "fetched elements that are larger than the
  smallest unfetched elements are kept in internal memory until the next
  batch";
* consumed input blocks are freed immediately so their slots are always
  available for output writes (the in-place property of Section IV-E).
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from ..cluster.cluster import Cluster
from ..em.context import ExternalMemory
from ..em.file import LocalRunPiece
from ..em.prefetch import naive_schedule, optimal_prefetch_schedule
from ..em.writebuffer import SegmentBlock, StreamBlockWriter
from ..records.arrays import merge_sorted_arrays
from ..sim.resources import Pool
from .config import SortConfig
from .stats import SortStats

__all__ = ["merge_phase", "TAG"]

TAG = "merge"

_INF = (float("inf"), float("inf"), float("inf"))


def _fetcher(
    cluster: Cluster,
    store,
    blocks: List[SegmentBlock],
    schedule: List[int],
    pool: Pool,
    arrivals: List,
) -> Generator:
    """Issue block reads in schedule order, gated by the buffer pool.

    Reads are *issued* as soon as a buffer is free and complete
    asynchronously; ``arrivals[pos]`` fires with the keys.
    """
    for pos in schedule:
        yield pool.acquire(1)
        req = store.read(blocks[pos].bid, tag=TAG)

        def deliver(event, pos=pos):
            arrivals[pos].succeed(event.value)

        req.add_callback(deliver)
    return None


def merge_phase(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    segments: List[List[SegmentBlock]],
    sink=None,
) -> Generator:
    """SPMD generator; returns this node's sorted output as a run piece.

    With a ``sink`` (see :mod:`repro.core.pipeline`), the merged stream is
    handed to the sink in sorted order instead of being written to disk —
    the pipelined-sorting mode of the paper's Section VII, saving one full
    write pass.  The return value is then an empty run piece.
    """
    node = cluster.nodes[rank]
    store = em.store(rank)
    n_runs = len(segments)
    spec = cluster.spec

    # Flatten to the prediction sequence: blocks by (first key, run, index).
    flat: List[SegmentBlock] = []
    owner_run: List[int] = []
    for r, seg in enumerate(segments):
        for blk in seg:
            flat.append(blk)
            owner_run.append(r)
    if not flat:
        return LocalRunPiece(rank, [], [], np.empty(0, np.uint64), np.empty(0, np.uint64), 1)

    index_in_run = []
    seen = [0] * n_runs
    for r in owner_run:
        index_in_run.append(seen[r])
        seen[r] += 1
    pred = sorted(
        range(len(flat)),
        key=lambda i: (flat[i].first_key, owner_run[i], index_in_run[i]),
    )
    blocks = [flat[i] for i in pred]
    block_run = [owner_run[i] for i in pred]

    # Prefetch schedule over the prediction order.
    n_buffers = config.resolved_prefetch_buffers(spec)
    disk_ids = [blk.bid.disk for blk in blocks]
    if config.optimal_prefetch:
        schedule = optimal_prefetch_schedule(disk_ids, n_buffers, spec.disks_per_node)
    else:
        schedule = naive_schedule(len(blocks))

    pool = Pool(cluster.sim, n_buffers, name=f"prefetch@{rank}")
    arrivals = [cluster.sim.event() for _ in blocks]
    fetch_proc = cluster.sim.process(
        _fetcher(cluster, store, blocks, schedule, pool, arrivals),
        name=f"fetch@{rank}",
    )

    # Per-run consumption state: position of the next unarrived block.
    run_positions: List[List[int]] = [[] for _ in range(n_runs)]
    for pos, r in enumerate(block_run):
        run_positions[r].append(pos)
    next_ptr = [0] * n_runs  # index into run_positions[r]

    avail: List[List[np.ndarray]] = [[] for _ in range(n_runs)]
    outstanding: List = []
    writer = (
        None
        if sink is not None
        else StreamBlockWriter(
            store, TAG, outstanding, config.resolved_write_buffers(spec)
        )
    )
    total_keys = sum(blk.count for blk in blocks)
    emitted = 0

    def boundary_key() -> Optional[int]:
        """Smallest first-key of any not-yet-consumed block (None = done)."""
        best = None
        for r in range(n_runs):
            if next_ptr[r] < len(run_positions[r]):
                pos = run_positions[r][next_ptr[r]]
                k = blocks[pos].first_key
                if best is None or k < best:
                    best = k
        return best

    def emit_up_to(bound: Optional[int]) -> Generator:
        """Merge and write all buffered keys strictly below ``bound``."""
        nonlocal emitted
        ready: List[np.ndarray] = []
        for r in range(n_runs):
            if not avail[r]:
                continue
            keep: List[np.ndarray] = []
            for arr in avail[r]:
                if bound is None:
                    ready.append(arr)
                    continue
                cut = int(np.searchsorted(arr, bound, side="left"))
                if cut > 0:
                    ready.append(arr[:cut])
                if cut < len(arr):
                    keep.append(arr[cut:])
            avail[r] = keep if bound is not None else []
        if not ready:
            return
        out = merge_sorted_arrays(ready)
        emitted += len(out)
        yield node.merge_compute(
            config.keys_to_elements(len(out)),
            arity=max(2, n_runs),
            elem_bytes=config.element.elem_bytes,
            tag=TAG,
        )
        if sink is not None:
            cost = sink.consume(out)
            if cost:
                yield node.compute(cost, tag=TAG)
        else:
            yield from writer.add(out)

    for consume in range(len(blocks)):
        keys = yield arrivals[consume]
        r = block_run[consume]
        avail[r].append(keys)
        next_ptr[r] += 1
        store.free(blocks[consume].bid)  # slot immediately reusable for output
        pool.release(1)
        yield from emit_up_to(boundary_key())

    yield from emit_up_to(None)
    if writer is not None:
        yield from writer.flush()
    while outstanding:
        yield outstanding.pop(0)
    yield fetch_proc

    if emitted != total_keys:
        raise AssertionError(
            f"merge conservation violated on node {rank}: "
            f"emitted {emitted} of {total_keys} keys"
        )
    stats.add_counter(rank, "merge_output_keys", emitted)

    if writer is None:
        return LocalRunPiece(
            rank, [], [], np.empty(0, np.uint64), np.empty(0, np.uint64), 1
        )
    out_blocks = [sb.bid for sb in writer.blocks]
    out_counts = [sb.count for sb in writer.blocks]
    out_firsts = np.asarray([sb.first_key for sb in writer.blocks], dtype=np.uint64)
    return LocalRunPiece(
        node=rank,
        blocks=out_blocks,
        counts=out_counts,
        first_keys=out_firsts,
        sample_keys=np.empty(0, np.uint64),
        sample_every=max(1, config.resolved_sample_every),
    )
