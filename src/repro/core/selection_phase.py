"""Phase two (a) of CANONICALMERGESORT: multiway selection over the runs.

Every PE ``i`` selects, for each run, the position of the first element it
is supposed to own in the final result — i.e. it runs a multiway selection
for global rank ``i·N/P`` over the R distributed runs.  The paper's three
optimizations are all here:

* **randomization** during run formation balances the remote block
  accesses the selections trigger (the accesses hit the disks that store
  the runs — a worst case of O(R·P·log M) requests to a single disk is
  what the optimization avoids);
* **sampling** — the every-K-th-element sample collected during run
  formation initializes the splitter positions, shrinking the search to
  one sample gap per run (Appendix B);
* **caching** — an LRU over the most recently accessed blocks eliminates
  the ``R log B`` final accesses of each selection.

Strategies: ``sampled`` (the paper's production path), ``basic`` (cold
start, no sample), ``bisect`` (the provably bounded scalable variant).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from ..algos.multiway_selection import (
    SelectionResult,
    select_bisect_coroutine,
    select_coroutine,
)
from ..cluster.cluster import Cluster
from ..em.cache import LRUCache
from ..em.context import ExternalMemory
from ..em.file import DistributedRun
from .config import SortConfig
from .stats import SortStats

__all__ = ["selection_phase", "warm_start_from_samples", "TAG"]

TAG = "selection"


def warm_start_from_samples(
    run_samples: List[Tuple[np.ndarray, np.ndarray]],
    rank: int,
    lengths: List[int],
    sample_every: int,
) -> Tuple[List[int], int]:
    """Initial splitter positions from the run-formation samples.

    ``run_samples[r]`` is ``(keys, positions)``: the sampled keys of run
    ``r`` and their global positions within the run.  Returns positions
    just below the exact splitters plus the step size (= sample period) to
    continue the search with, as in Appendix B.
    """
    n_runs = len(run_samples)
    if rank <= 0:
        return [0] * n_runs, sample_every
    keys_parts, runs_parts, pos_parts = [], [], []
    for r, (keys, positions) in enumerate(run_samples):
        if len(keys) == 0:
            continue
        keys_parts.append(np.asarray(keys))
        runs_parts.append(np.full(len(keys), r, dtype=np.int64))
        pos_parts.append(np.asarray(positions, dtype=np.int64))
    if not keys_parts:
        return [0] * n_runs, sample_every
    keys = np.concatenate(keys_parts)
    runs = np.concatenate(runs_parts)
    positions = np.concatenate(pos_parts)
    order = np.lexsort((positions, runs, keys))
    t = min(rank // sample_every, len(order) - 1)
    prefix = order[: t + 1]
    out = [0] * n_runs
    if len(prefix):
        # Within a run, samples ascend with position, and a global-order
        # prefix contains a per-run prefix: the last included sample's
        # position is a safe (conservative) starting splitter.
        counts = np.bincount(runs[prefix], minlength=n_runs)
        for r in range(n_runs):
            c = int(counts[r])
            if c > 0:
                sample_positions = run_samples[r][1]
                out[r] = min(int(sample_positions[c - 1]), lengths[r])
    return out, sample_every


def _run_samples(runs: List[DistributedRun]) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Global (keys, positions) sample arrays per run, stitched from pieces."""
    out = []
    for run in runs:
        keys_parts, pos_parts = [], []
        for n, piece in enumerate(run.pieces):
            if len(piece.sample_keys) == 0:
                continue
            keys_parts.append(piece.sample_keys)
            local = np.arange(len(piece.sample_keys), dtype=np.int64) * piece.sample_every
            pos_parts.append(local + run.offsets[n])
        if keys_parts:
            out.append((np.concatenate(keys_parts), np.concatenate(pos_parts)))
        else:
            out.append((np.empty(0, np.uint64), np.empty(0, np.int64)))
    return out


def selection_phase(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    runs: List[DistributedRun],
) -> Generator:
    """SPMD generator; returns the (P+1) × R splitter-position matrix.

    ``splits[i][r]`` is the global position in run ``r`` where rank
    ``i``'s final segment starts; row ``P`` holds the run lengths.
    """
    me = rank
    comm = cluster.comm
    n_nodes = cluster.n_nodes
    lengths = [len(run) for run in runs]
    total = sum(lengths)
    target = me * total // n_nodes

    # The sample lives in every node's memory after one gather (its wire
    # cost — one key per K elements — is charged here once).
    local_sample_keys = sum(
        len(run.pieces[me].sample_keys) for run in runs
    )
    yield comm.allgather(
        me, None, nbytes=config.keys_to_bytes(local_sample_keys)
    )

    if config.selection == "sampled":
        init_pos, init_step = warm_start_from_samples(
            _run_samples(runs), target, lengths, config.resolved_sample_every
        )
        gen = select_coroutine(lengths, target, init_positions=init_pos, init_step=init_step)
    elif config.selection == "basic":
        gen = select_coroutine(lengths, target)
    else:  # bisect
        gen = select_bisect_coroutine(lengths, target)

    cache = LRUCache(config.selection_cache_blocks)
    result: SelectionResult
    try:
        req = next(gen)
        while True:
            r, gpos = req
            node_id, lpos = runs[r].locate(gpos)
            piece = runs[r].pieces[node_id]
            bidx, within = piece.block_of(lpos)
            bid = piece.blocks[bidx]
            arr = cache.get(bid)
            if arr is None:
                arr = yield from em.read_block(
                    me, bid, tag=TAG, active_nodes=n_nodes
                )
                cache.put(bid, arr)
                stats.add_counter(me, "selection_block_reads")
                if bid.node != me:
                    stats.add_counter(me, "selection_remote_reads")
            req = gen.send(int(arr[within]))
    except StopIteration as stop:
        result = stop.value

    stats.add_counter(me, "selection_touches", result.touches)
    stats.add_counter(me, "selection_cache_hits", cache.hits)
    stats.add_counter(me, "selection_fixup_swaps", getattr(result, "fixup_swaps", 0))

    # Share the boundaries: "After communicating the splitter positions to
    # PEs i and i−1, every PE knows the elements it has to merge" — the
    # senders additionally need all boundaries, hence an allgather.
    all_positions = yield comm.allgather(
        me, result.positions, nbytes=8.0 * len(runs)
    )
    splits = [list(p) for p in all_positions]
    splits.append(list(lengths))
    return splits
