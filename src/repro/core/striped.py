"""Mergesort with global striping (paper Section III).

The I/O-optimal variant: runs and output are striped over *all* disks of
the machine, so up to ``M/B`` runs can be merged in one pass and inputs up
to ``M²/B`` elements sort in two passes — a factor P more than
CanonicalMergeSort's limit.  The price is communication: data crosses the
network during the internal sorting *and* again to reach the disks its
striped blocks live on, in both phases — "4-5 communications for two
passes of sorting".

Phases:

1. **Run formation** — like CanonicalMergeSort's, but each sorted run is
   written globally striped: an all-to-all carries every element to the
   node owning its target block (fraction (P−1)/P of the data).
2. **Merging** — up to ``fan_in`` runs merge per pass.  Blocks are fetched
   in prediction-sequence order in batches of Θ(M/B); the batch (plus the
   leftover of the previous batch) is sorted with the distributed internal
   sort — the paper notes batch merging may be replaced by "fully-fledged
   parallel sorting of batches" — and all elements below the smallest
   unfetched key are emitted, again via an all-to-all onto the stripe.
   With more runs than the fan-in limit, multiple passes run (the
   ``ceil(log_{Θ(M/B)} N/M)`` merging phases of the paper).

Every batch keeps at most one block per run unmerged (the prediction-
sequence invariant), bounding the leftover memory by R·B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..em.context import ExternalMemory
from ..em.writebuffer import SegmentBlock
from .config import SortConfig
from .internal_sort import distributed_sort_run
from .run_formation import _chunk_schedule, _read_chunk
from .stats import PhaseTimer, SortStats

__all__ = ["GlobalStripedMergeSort", "StripedSortResult", "StripedRun"]


@dataclass
class StripedRun:
    """A sorted run striped block-wise over all disks of the machine."""

    blocks: List[SegmentBlock]  # global order; bid.node cycles over nodes

    @property
    def n_keys(self) -> int:
        return sum(b.count for b in self.blocks)


@dataclass
class StripedSortResult:
    """Outcome of a globally striped sort."""

    config: SortConfig
    n_nodes: int
    stats: SortStats
    output: StripedRun
    n_runs: int
    merge_passes: int

    def global_keys(self, em: ExternalMemory) -> np.ndarray:
        """Materialize the globally sorted output (validation only)."""
        parts = [
            em.store(b.bid.node).peek(b.bid)[: b.count] for b in self.output.blocks
        ]
        return np.concatenate(parts) if parts else np.empty(0, np.uint64)


class _StripeAllocator:
    """Round-robin block placement over every disk of the machine."""

    def __init__(self, em: ExternalMemory, n_nodes: int, disks_per_node: int):
        self.em = em
        self.n_slots = n_nodes * disks_per_node
        self.disks_per_node = disks_per_node
        self._cursor = 0

    def next_owner(self) -> Tuple[int, int]:
        """(node, disk) of the next stripe slot."""
        slot = self._cursor
        self._cursor = (self._cursor + 1) % self.n_slots
        node, disk = divmod(slot, self.disks_per_node)
        return node, disk


class GlobalStripedMergeSort:
    """Two-pass I/O-optimal sort with globally striped layout (§III)."""

    name = "GlobalStripedMergeSort"

    def __init__(self, cluster: Cluster, config: SortConfig, fan_in: Optional[int] = None):
        self.cluster = cluster
        self.config = config
        # Fan-in Θ(M/B): one buffer block per run in *cumulative* memory.
        limit = max(2, config.piece_blocks(cluster.spec) * cluster.n_nodes // 2)
        self.fan_in = min(fan_in, limit) if fan_in is not None else limit

    def sort(self, em: ExternalMemory, inputs) -> StripedSortResult:
        """Sort pre-placed input blocks into one globally striped run."""
        cluster = self.cluster
        config = self.config
        stats = SortStats(config, cluster.n_nodes)
        stats.phases = ["run_formation", "merge"]
        shared: dict = {}

        def pe_main(rank: int, cluster: Cluster):
            comm = cluster.comm
            # Every rank replays the same collective sequence, so per-rank
            # allocator replicas stay in lock-step and agree on owners.
            alloc = _StripeAllocator(em, cluster.n_nodes, cluster.spec.disks_per_node)
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "run_formation", cluster.sim)
            runs = yield from self._run_formation(rank, em, stats, inputs[rank], alloc)
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "merge", cluster.sim)
            passes = 0
            while len(runs) > 1:
                groups = [
                    runs[i : i + self.fan_in] for i in range(0, len(runs), self.fan_in)
                ]
                merged: List[StripedRun] = []
                for group in groups:
                    merged.append(
                        (yield from self._merge_pass(rank, em, stats, group, alloc))
                    )
                runs = merged
                passes += 1
            if not runs:
                runs = [StripedRun([])]
            timer.stop()
            if rank == 0:
                shared["runs0"] = runs[0]
                shared["passes"] = passes
            return runs[0]

        started = cluster.sim.now
        cluster.run_spmd(pe_main)
        stats.total_time = cluster.sim.now - started
        stats.collect_io(cluster)
        n_runs = int(stats.counters[0].get("n_runs", 0))
        return StripedSortResult(
            config=config,
            n_nodes=cluster.n_nodes,
            stats=stats,
            output=shared["runs0"],
            n_runs=n_runs,
            merge_passes=shared.get("passes", 0),
        )

    # -- phase one ---------------------------------------------------------------

    def _run_formation(self, rank, em, stats, input_blocks, alloc) -> Generator:
        cluster = self.cluster
        config = self.config
        comm = cluster.comm
        tag = "run_formation"
        piece_blocks = config.piece_blocks(cluster.spec)
        chunks = _chunk_schedule(input_blocks, config, rank, piece_blocks)
        n_runs = yield comm.allreduce(rank, len(chunks), max)
        runs: List[StripedRun] = []
        for r in range(n_runs):
            chunk = chunks[r] if r < len(chunks) else []
            keys = yield from _read_chunk(em, rank, chunk, config.resolved_write_buffers(cluster.spec))
            piece = yield from distributed_sort_run(
                rank, cluster, config, stats, keys, tag
            )
            run = yield from self._write_striped(rank, em, stats, piece, alloc, tag)
            runs.append(run)
        # Remember R for the result (rank 0 only; all ranks agree).
        if rank == 0:
            stats.add_counter(0, "n_runs", n_runs)
        return runs

    # -- striped writing ------------------------------------------------------------

    def _write_striped(self, rank, em, stats, piece_keys, alloc, tag) -> Generator:
        """Collectively write each rank's sorted piece onto the stripe.

        The pieces of all ranks form one sorted global sequence; blocks are
        assigned round-robin over all disks, and an all-to-all ships each
        rank's data to the owners of its target blocks.
        """
        cluster = self.cluster
        config = self.config
        comm = cluster.comm
        n_nodes = cluster.n_nodes
        be = config.block_elems
        bpk = config.bytes_per_key

        counts = yield comm.allgather(rank, len(piece_keys), nbytes=8.0)
        offsets = [0] * (n_nodes + 1)
        for i, c in enumerate(counts):
            offsets[i + 1] = offsets[i] + c
        total = offsets[-1]
        n_blocks = math.ceil(total / be) if total else 0
        # Deterministic stripe plan: every rank derives the same owners.
        owners = [alloc.next_owner() for _ in range(n_blocks)]

        # Ship each of my keys' spans to the owner of its target block.
        send: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(n_nodes)]
        send_bytes = [0.0] * n_nodes
        my_off = offsets[rank]
        pos = my_off
        while pos < offsets[rank + 1]:
            blk = pos // be
            blk_end = min((blk + 1) * be, offsets[rank + 1])
            node, _disk = owners[blk]
            span = piece_keys[pos - my_off : blk_end - my_off]
            send[node].append((blk, span))
            if node != rank:
                send_bytes[node] += len(span) * bpk
            pos = blk_end
        recv, _rb = yield comm.alltoallv(rank, send, send_bytes)

        # Owners assemble and write their stripe blocks.
        mine: dict = {}
        for src in range(n_nodes):
            for blk, span in recv[src]:
                mine.setdefault(blk, []).append((src, span))
        outstanding = []
        max_out = config.resolved_write_buffers(cluster.spec)
        written: List[Tuple[int, SegmentBlock]] = []
        store = em.store(rank)
        for blk in sorted(mine):
            parts = [span for _src, span in sorted(mine[blk])]
            data = parts[0] if len(parts) == 1 else np.concatenate(parts)
            node, disk = owners[blk]
            assert node == rank
            bid = store.allocate(disk=disk)
            written.append((blk, SegmentBlock(bid, len(data), int(data[0]))))
            outstanding.append(store.write(bid, data, tag=tag))
            if len(outstanding) > max_out:
                yield outstanding.pop(0)
        for ev in outstanding:
            yield ev

        # Everyone learns the full block list (metadata-sized gather).
        gathered = yield comm.allgather(rank, written, nbytes=24.0 * len(written))
        blocks: List[Optional[SegmentBlock]] = [None] * n_blocks
        for per_rank in gathered:
            for blk, seg in per_rank:
                blocks[blk] = seg
        return StripedRun([b for b in blocks if b is not None])

    # -- merging passes -------------------------------------------------------------

    def _merge_pass(self, rank, em, stats, group: List[StripedRun], alloc) -> Generator:
        """Merge up to ``fan_in`` striped runs into one striped run."""
        cluster = self.cluster
        config = self.config
        comm = cluster.comm
        n_nodes = cluster.n_nodes
        tag = "merge"

        # Prediction sequence over all blocks of the group.
        entries: List[Tuple[int, int, int]] = []  # (first_key, run, idx)
        for g, run in enumerate(group):
            for i, blk in enumerate(run.blocks):
                entries.append((blk.first_key, g, i))
        order = sorted(range(len(entries)), key=lambda i: entries[i])
        flat = [group[entries[i][1]].blocks[entries[i][2]] for i in order]

        batch_blocks = max(
            n_nodes, config.piece_blocks(cluster.spec) * n_nodes // 2
        )
        leftover = np.empty(0, np.uint64)
        out_blocks: List[SegmentBlock] = []
        cursor = 0
        # Collective-safe loop bound: the final batch has no boundary, so
        # every rank's leftover empties exactly when ``flat`` is exhausted.
        while cursor < len(flat):
            batch = flat[cursor : cursor + batch_blocks]
            next_cursor = cursor + len(batch)
            boundary = (
                int(flat[next_cursor].first_key) if next_cursor < len(flat) else None
            )
            # Each node reads the batch blocks it owns (parallel stripe read).
            arrays = []
            inflight = []
            store = em.store(rank)
            for blk in batch:
                if blk.bid.node != rank:
                    continue
                inflight.append(store.read(blk.bid, tag=tag))
                if len(inflight) > config.resolved_write_buffers(cluster.spec):
                    arrays.append((yield inflight.pop(0)))
            for ev in inflight:
                arrays.append((yield ev))
            for blk in batch:
                if blk.bid.node == rank:
                    store.free(blk.bid)
            local = np.concatenate([leftover] + arrays) if arrays or len(leftover) else leftover

            # Distributed sort of (leftover + batch); then emit below the
            # boundary — the smallest unfetched key.
            piece = yield from distributed_sort_run(
                rank, cluster, config, stats, local, tag
            )
            if boundary is None:
                emit, leftover = piece, np.empty(0, np.uint64)
            else:
                cut = int(np.searchsorted(piece, boundary, side="left"))
                emit, leftover = piece[:cut], piece[cut:]
            run_part = yield from self._write_striped(
                rank, em, stats, emit, alloc, tag
            )
            out_blocks.extend(run_part.blocks)
            cursor = next_cursor
        return StripedRun(out_blocks)
