"""Sort configuration and the paper-scale / simulation-scale mapping.

Table I of the paper fixes the symbols this module speaks:

=========  =====================================================
Symbol     Meaning
=========  =====================================================
``P``      number of PEs (cluster nodes here, as in the paper)
``M``      internal memory in elements (global run size)
``D``      number of disks (4 per node in the paper's machine)
``B``      block size (8 MiB default, 2 MiB in one Figure 5 run)
``N``      total number of elements
``R``      number of runs, ``R = ceil(N / M)``
=========  =====================================================

Scaling discipline (DESIGN.md §5): parameters are given at *paper scale*
(bytes of real data); ``downscale`` shrinks the number of blocks actually
simulated while preserving every ratio that matters (R, blocks per run,
data/memory ratio).  Each simulated block carries ``block_elems`` real
keys but *represents* a full ``block_bytes`` block; reported times and
byte volumes are therefore paper-scale after multiplying by ``downscale``
(the harness does this; I/O-volume *ratios* like Figure 5 need no
rescaling at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..cluster.machine import MachineSpec, MiB
from ..records.element import ELEM_PAPER_16B, ElementType

__all__ = ["SortConfig", "ConfigError", "PHASES"]

#: Canonical phase names, in algorithm order (CanonicalMergeSort).
PHASES = ("run_formation", "selection", "all_to_all", "merge")


class ConfigError(ValueError):
    """The configuration cannot run on the given machine (paper §IV-D)."""


@dataclass(frozen=True)
class SortConfig:
    """Parameters of one external-sort execution."""

    #: Record shape (16-byte paper elements or 100-byte SortBenchmark).
    element: ElementType = ELEM_PAPER_16B
    #: Block size ``B`` in represented bytes.
    block_bytes: float = 8 * MiB
    #: Input data per node (``N/P``) in represented bytes.
    data_per_node_bytes: float = 1024 * MiB
    #: Memory per node usable for run data (``M/P``); None = machine spec.
    memory_bytes: Optional[float] = None
    #: Simulation reduction factor: simulate 1/downscale of the blocks.
    downscale: float = 1.0
    #: Real keys carried per simulated block.
    block_elems: int = 64
    #: Shuffle local input block IDs before forming runs (paper §IV).
    randomize: bool = True
    #: Keep every K-th element of each run piece as an in-memory sample;
    #: None = one sample per block (the K = B choice of Appendix B).
    sample_every: Optional[int] = None
    #: LRU capacity (blocks) of the multiway-selection cache.
    selection_cache_blocks: int = 64
    #: Selection strategy: "sampled" (paper's optimized §IV-A), "basic"
    #: (cold-start step halving) or "bisect" (provable scalable variant).
    selection: str = "sampled"
    #: Overlap I/O with computation/communication (paper §IV-E).
    overlap: bool = True
    #: Prefetch-buffer blocks per node for the merge phase; None = 4 per disk.
    prefetch_buffers: Optional[int] = None
    #: Outstanding write-buffer blocks per node; None = 2 per disk.
    write_buffers: Optional[int] = None
    #: Use the optimal duality-based prefetch schedule (Appendix A); the
    #: ablation turns this off to fetch in plain prediction order.
    optimal_prefetch: bool = True
    #: Fraction of node memory budgeted per external all-to-all subop.
    alltoall_mem_fraction: float = 0.5
    #: Seed for block randomization (per-node streams derive from it).
    seed: int = 12345

    # -- derived quantities ---------------------------------------------------

    def resolve_memory_bytes(self, spec: MachineSpec) -> float:
        """Per-node run memory (paper-scale bytes)."""
        return self.memory_bytes if self.memory_bytes is not None else spec.usable_ram

    @property
    def bytes_per_key(self) -> float:
        """Represented bytes carried by one simulated key."""
        return self.block_bytes / self.block_elems

    @property
    def repr_elems_per_key(self) -> float:
        """Paper-scale records represented by one simulated key."""
        return self.bytes_per_key / self.element.elem_bytes

    @property
    def blocks_per_node(self) -> int:
        """Simulated input blocks per node."""
        return max(1, math.ceil(self.data_per_node_bytes / self.downscale / self.block_bytes))

    @property
    def keys_per_node(self) -> int:
        """Simulated keys per node."""
        return self.blocks_per_node * self.block_elems

    def piece_blocks(self, spec: MachineSpec) -> int:
        """Blocks of one run piece per node (= per-node memory in blocks)."""
        mem = self.resolve_memory_bytes(spec) / self.downscale
        return max(1, int(mem / self.block_bytes))

    def piece_keys(self, spec: MachineSpec) -> int:
        """Keys of one run piece per node."""
        return self.piece_blocks(spec) * self.block_elems

    def n_runs(self, spec: MachineSpec) -> int:
        """The paper's R = ceil(N / M)."""
        return max(1, math.ceil(self.blocks_per_node / self.piece_blocks(spec)))

    @property
    def resolved_sample_every(self) -> int:
        """Effective sampling period K (defaults to one sample per block)."""
        return self.sample_every if self.sample_every is not None else self.block_elems

    def resolved_prefetch_buffers(self, spec: MachineSpec) -> int:
        return (
            self.prefetch_buffers
            if self.prefetch_buffers is not None
            else 4 * spec.disks_per_node
        )

    def resolved_write_buffers(self, spec: MachineSpec) -> int:
        return (
            self.write_buffers
            if self.write_buffers is not None
            else 2 * spec.disks_per_node
        )

    # -- unit conversions -------------------------------------------------------

    def keys_to_bytes(self, n_keys: float) -> float:
        """Represented bytes of ``n_keys`` simulated keys."""
        return n_keys * self.bytes_per_key

    def keys_to_elements(self, n_keys: float) -> float:
        """Paper-scale record count of ``n_keys`` simulated keys."""
        return n_keys * self.repr_elems_per_key

    def blocks_to_bytes(self, n_blocks: float) -> float:
        return n_blocks * self.block_bytes

    def total_keys(self, n_nodes: int) -> int:
        """Simulated N (keys over the whole machine)."""
        return self.keys_per_node * n_nodes

    def total_bytes(self, n_nodes: int) -> float:
        """Represented N in bytes over the whole machine (simulated part)."""
        return self.keys_to_bytes(self.total_keys(n_nodes))

    # -- feasibility (paper §IV-D) -----------------------------------------------

    def validate(self, spec: MachineSpec, n_nodes: int) -> None:
        """Check the constraints of the paper's analysis, §IV-D.

        Raises :class:`ConfigError` when the merge phase could not hold one
        buffer block per run (the N = O(M²/(PB)) limit) or when the
        simulation granularity degenerated.
        """
        if self.selection not in ("sampled", "basic", "bisect"):
            raise ConfigError(f"unknown selection strategy {self.selection!r}")
        if not 0 < self.alltoall_mem_fraction <= 1:
            raise ConfigError(
                f"alltoall_mem_fraction must be in (0, 1], got {self.alltoall_mem_fraction}"
            )
        piece = self.piece_blocks(spec)
        runs = self.n_runs(spec)
        buffers = self.resolved_prefetch_buffers(spec) + self.resolved_write_buffers(spec)
        if runs + buffers > piece + buffers and runs > piece:
            raise ConfigError(
                f"R = {runs} runs exceed the {piece} memory blocks per node: "
                "input too large for two-pass sorting (paper limit N = O(M^2/(P B)))"
            )
        if self.block_elems < 2:
            raise ConfigError("block_elems < 2 leaves no key resolution per block")
        if n_nodes < 1:
            raise ConfigError(f"need at least one node, got {n_nodes}")

    def with_overrides(self, **kwargs) -> "SortConfig":
        """A copy of the config with selected fields replaced."""
        return replace(self, **kwargs)
