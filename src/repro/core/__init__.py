"""The paper's core contribution: CanonicalMergeSort and its phases."""

from .all_to_all import all_to_all_phase
from .canonical import CanonicalMergeSort, SortResult
from .config import PHASES, ConfigError, SortConfig
from .internal_sort import distributed_sort_run
from .merge_phase import merge_phase
from .pipeline import (
    ArraySource,
    BlockSource,
    CollectingSink,
    PipelinedMergeSort,
    PipelineResult,
    Sink,
)
from .run_formation import run_formation
from .selection_phase import selection_phase, warm_start_from_samples
from .stats import PhaseStat, PhaseTimer, SortStats

__all__ = [
    "CanonicalMergeSort",
    "SortResult",
    "SortConfig",
    "ConfigError",
    "PHASES",
    "SortStats",
    "PhaseStat",
    "PhaseTimer",
    "run_formation",
    "selection_phase",
    "warm_start_from_samples",
    "all_to_all_phase",
    "merge_phase",
    "PipelinedMergeSort",
    "PipelineResult",
    "BlockSource",
    "ArraySource",
    "Sink",
    "CollectingSink",
    "distributed_sort_run",
]
