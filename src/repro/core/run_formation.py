"""Phase one of CANONICALMERGESORT: run formation (paper Section IV).

``R = N/M`` global runs are created.  For each run, every node contributes
a memory-load of its local input blocks, the run is sorted with the
distributed internal sort, and each node writes its (exact-quantile) piece
of the run back to its *local* disks — this locality is what saves
CanonicalMergeSort the extra communication of the globally striped
algorithm.

Two details from the paper are implemented here:

* **Randomization** — each PE shuffles the IDs of its local input blocks
  before chopping them into runs, so every run sees a random subset of
  every node's data and all runs get similar key distributions (the crux
  of Appendix C's data-movement bound).  With ``randomize=False`` the
  blocks are taken in their natural order, which is the configuration of
  the worst-case experiment (Figure 6).
* **Overlapping** — while run ``i`` is sorted, the already-sorted run
  ``i−1`` is still being written and the input of run ``i+1`` is already
  being fetched (Section IV-E).  Reads within a chunk are issued in
  disk-offset (elevator) order, modeling the offline disk scheduling the
  paper mentions for run formation.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..cluster.cluster import Cluster
from ..em.block import BID
from ..em.context import ExternalMemory
from ..em.file import DistributedRun, LocalRunPiece, write_piece
from .config import SortConfig
from .internal_sort import distributed_sort_run
from .stats import SortStats

__all__ = ["run_formation", "TAG"]

TAG = "run_formation"


def _chunk_schedule(
    input_blocks: List[BID], config: SortConfig, rank: int, piece_blocks: int
) -> List[List[BID]]:
    """Partition the local input blocks into per-run chunks.

    Applies the randomized shuffle of block IDs when configured; within
    each chunk, blocks are ordered by (disk, slot) so reads proceed in
    elevator order per disk.
    """
    order = list(input_blocks)
    if config.randomize:
        rng = np.random.default_rng((config.seed, rank))
        rng.shuffle(order)
    chunks = [
        sorted(order[start : start + piece_blocks], key=lambda b: (b.disk, b.slot))
        for start in range(0, len(order), piece_blocks)
    ]
    return chunks


def _read_chunk(em: ExternalMemory, rank: int, chunk: List[BID], depth: int) -> Generator:
    """Read a chunk's blocks (bounded read-ahead), free them, return keys."""
    store = em.store(rank)
    inflight = []
    arrays = []
    idx = 0
    while idx < len(chunk) or inflight:
        while idx < len(chunk) and len(inflight) < depth:
            inflight.append((chunk[idx], store.read(chunk[idx], tag=TAG)))
            idx += 1
        bid, ev = inflight.pop(0)
        keys = yield ev
        arrays.append(keys)
        store.free(bid)  # in-place: slot immediately reusable for run output
    if not arrays:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(arrays)


def run_formation(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    input_blocks: List[BID],
) -> Generator:
    """SPMD generator for phase one; returns the list of DistributedRuns.

    Every rank receives the same run descriptors (piece objects of all
    nodes are exchanged through an allgather whose wire size is only the
    descriptor metadata).
    """
    node = cluster.nodes[rank]
    comm = cluster.comm
    store = em.store(rank)
    piece_blocks = config.piece_blocks(cluster.spec)
    chunks = _chunk_schedule(input_blocks, config, rank, piece_blocks)

    # All nodes hold equally many blocks by construction; every rank must
    # agree on R since the internal sort is collective.
    n_runs = yield comm.allreduce(rank, len(chunks), max)
    depth = config.resolved_write_buffers(cluster.spec)

    pieces: List[LocalRunPiece] = []
    write_procs: List = []
    read_proc = None
    if config.overlap and chunks:
        read_proc = cluster.sim.process(
            _read_chunk(em, rank, chunks[0], depth), name=f"rf-read0@{rank}"
        )

    for r in range(n_runs):
        chunk = chunks[r] if r < len(chunks) else []
        # Fetch this run's input (possibly prefetched), start next prefetch.
        if config.overlap:
            keys = (yield read_proc) if read_proc is not None else np.empty(0, np.uint64)
            nxt = chunks[r + 1] if r + 1 < len(chunks) else None
            read_proc = (
                cluster.sim.process(
                    _read_chunk(em, rank, nxt, depth), name=f"rf-read{r + 1}@{rank}"
                )
                if nxt is not None
                else None
            )
        else:
            keys = yield from _read_chunk(em, rank, chunk, depth)

        # Globally sort the run (collective).
        piece_keys = yield from distributed_sort_run(
            rank, cluster, config, stats, keys, TAG
        )

        # Write the piece locally, overlapping with the next run's work.
        if write_procs:
            pieces.append((yield write_procs.pop(0)))
        writer = write_piece(
            store,
            piece_keys,
            tag=TAG,
            sample_every=config.resolved_sample_every,
            max_outstanding=depth,
        )
        if config.overlap:
            write_procs.append(cluster.sim.process(writer, name=f"rf-write{r}@{rank}"))
        else:
            pieces.append((yield from writer))

    for proc in write_procs:
        pieces.append((yield proc))

    stats.add_counter(rank, "runs_formed", len(pieces))

    # Exchange piece descriptors so every rank can build the global runs.
    all_pieces = yield comm.allgather(
        rank, pieces, nbytes=64.0 * len(pieces)  # descriptor metadata only
    )
    runs = [
        DistributedRun(r, [all_pieces[n][r] for n in range(cluster.n_nodes)])
        for r in range(n_runs)
    ]
    return runs
