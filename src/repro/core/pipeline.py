"""Pipelined sorting (paper Section VII).

The paper's outlook sketches a *pipelined* use of CanonicalMergeSort:

  "This algorithm could also be useful for pipelined sorting where the
  run formation does not fetch the data but obtains it from some data
  generator (no randomization possible for CANONICALMERGESORT) and where
  the output is not written to disk but fed into a postprocessor that
  requires its input in sorted order (e.g., variants of Kruskal's
  algorithm)."

This module implements exactly that: a :class:`BlockSource` feeds run
formation (no input pass over disk, and — as the paper notes — no block
randomization, since blocks are consumed as they are produced), and a
:class:`Sink` receives each PE's sorted quantile stream during the merge
phase (no output pass).  Total I/O drops from ~4·N to ~2·N bytes (the
runs still spill to disk, because N > M).

Sources/sinks may report per-key processing costs so producer/consumer
computation is charged to the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..em.context import ExternalMemory
from ..em.file import DistributedRun, LocalRunPiece, write_piece
from .all_to_all import all_to_all_phase
from .config import SortConfig
from .internal_sort import distributed_sort_run
from .merge_phase import merge_phase
from .selection_phase import selection_phase
from .stats import PhaseTimer, SortStats

__all__ = [
    "BlockSource",
    "ArraySource",
    "Sink",
    "CollectingSink",
    "PipelinedMergeSort",
    "PipelineResult",
]


class BlockSource:
    """Produces this node's input keys, block by block.

    Subclasses override :meth:`next_block` (return None when exhausted)
    and optionally :meth:`cost_seconds` to model upstream computation.
    """

    def next_block(self) -> Optional[np.ndarray]:
        raise NotImplementedError

    def cost_seconds(self, n_keys: int) -> float:
        """Modeled producer time for ``n_keys`` (0 = fully overlapped)."""
        return 0.0


class ArraySource(BlockSource):
    """A source backed by an in-memory key array (tests and examples)."""

    def __init__(self, keys: np.ndarray, block_elems: int,
                 seconds_per_key: float = 0.0):
        self.keys = np.asarray(keys, dtype=np.uint64)
        self.block_elems = int(block_elems)
        self.seconds_per_key = seconds_per_key
        self._pos = 0

    def next_block(self) -> Optional[np.ndarray]:
        if self._pos >= len(self.keys):
            return None
        chunk = self.keys[self._pos : self._pos + self.block_elems]
        self._pos += len(chunk)
        return chunk

    def cost_seconds(self, n_keys: int) -> float:
        return self.seconds_per_key * n_keys


class Sink:
    """Consumes one PE's sorted output stream, emission by emission.

    :meth:`consume` receives strictly non-decreasing key arrays and
    returns the modeled consumer time to charge (0 = fully overlapped).
    """

    def consume(self, keys: np.ndarray) -> float:
        raise NotImplementedError


class CollectingSink(Sink):
    """A sink that keeps everything it sees (tests and postprocessors)."""

    def __init__(self, seconds_per_key: float = 0.0):
        self.chunks: List[np.ndarray] = []
        self.seconds_per_key = seconds_per_key

    def consume(self, keys: np.ndarray) -> float:
        self.chunks.append(keys)
        return self.seconds_per_key * len(keys)

    @property
    def keys(self) -> np.ndarray:
        return (
            np.concatenate(self.chunks) if self.chunks else np.empty(0, np.uint64)
        )


@dataclass
class PipelineResult:
    """Outcome of a pipelined sort (output lives in the sinks)."""

    config: SortConfig
    n_nodes: int
    stats: SortStats
    sinks: List[Sink]
    n_runs: int


def _pipelined_run_formation(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    source: BlockSource,
) -> Generator:
    """Phase one fed by a source: pull a memory-load, sort, spill locally.

    No input I/O and — per the paper — no randomization: blocks join runs
    in production order.
    """
    tag = "run_formation"
    node = cluster.nodes[rank]
    comm = cluster.comm
    store = em.store(rank)
    piece_keys = config.piece_keys(cluster.spec)
    depth = config.resolved_write_buffers(cluster.spec)

    pieces: List[LocalRunPiece] = []
    exhausted = False
    while True:
        chunks: List[np.ndarray] = []
        pulled = 0
        while pulled < piece_keys and not exhausted:
            block = source.next_block()
            if block is None:
                exhausted = True
                break
            chunks.append(block)
            pulled += len(block)
            cost = source.cost_seconds(len(block))
            if cost:
                yield node.compute(cost, tag=tag)
        keys = np.concatenate(chunks) if chunks else np.empty(0, np.uint64)
        # Collective agreement: keep forming runs while anyone has data.
        anyone = yield comm.allreduce(rank, int(len(keys) > 0), max)
        if not anyone:
            break
        piece_keys_sorted = yield from distributed_sort_run(
            rank, cluster, config, stats, keys, tag
        )
        piece = yield from write_piece(
            store,
            piece_keys_sorted,
            tag=tag,
            sample_every=config.resolved_sample_every,
            max_outstanding=depth,
        )
        pieces.append(piece)

    all_pieces = yield comm.allgather(rank, pieces, nbytes=64.0 * len(pieces))
    n_runs = max(len(p) for p in all_pieces)
    runs = [
        DistributedRun(r, [all_pieces[n][r] for n in range(cluster.n_nodes)])
        for r in range(n_runs)
    ]
    stats.add_counter(rank, "runs_formed", len(pieces))
    return runs


class PipelinedMergeSort:
    """CanonicalMergeSort between a data generator and a sorted-order
    consumer (paper §VII)."""

    name = "PipelinedMergeSort"

    def __init__(self, cluster: Cluster, config: SortConfig):
        config.validate(cluster.spec, cluster.n_nodes)
        self.cluster = cluster
        self.config = config

    def sort(
        self,
        em: ExternalMemory,
        sources: Sequence[BlockSource],
        sinks: Sequence[Sink],
    ) -> PipelineResult:
        """Stream from ``sources`` through the sort into ``sinks``.

        ``sinks[i]`` receives PE ``i``'s canonical quantile stream in
        sorted order, emission by emission, while merging is still in
        progress (the postprocessor is pipelined, not batched).
        """
        cluster = self.cluster
        config = self.config
        if len(sources) != cluster.n_nodes or len(sinks) != cluster.n_nodes:
            raise ValueError(
                f"need one source and one sink per node "
                f"({cluster.n_nodes}), got {len(sources)}/{len(sinks)}"
            )
        stats = SortStats(config, cluster.n_nodes)
        n_runs_holder = [0]

        def pe_main(rank: int, cluster: Cluster):
            comm = cluster.comm
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "run_formation", cluster.sim)
            runs = yield from _pipelined_run_formation(
                rank, cluster, em, config, stats, sources[rank]
            )
            timer.stop()
            n_runs_holder[0] = len(runs)
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "selection", cluster.sim)
            splits = yield from selection_phase(
                rank, cluster, em, config, stats, runs
            )
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "all_to_all", cluster.sim)
            segments = yield from all_to_all_phase(
                rank, cluster, em, config, stats, runs, splits
            )
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "merge", cluster.sim)
            yield from merge_phase(
                rank, cluster, em, config, stats, segments, sink=sinks[rank]
            )
            timer.stop()
            return None

        started = cluster.sim.now
        cluster.run_spmd(pe_main)
        stats.total_time = cluster.sim.now - started
        stats.collect_io(cluster)
        return PipelineResult(
            config=config,
            n_nodes=cluster.n_nodes,
            stats=stats,
            sinks=list(sinks),
            n_runs=n_runs_holder[0],
        )
