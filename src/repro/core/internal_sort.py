"""Distributed internal-memory parallel mergesort (paper Section IV-B).

Used by run formation to sort one global run held in the cumulative memory
of the machine: every node sorts its local part, the P sorted sequences
are split *exactly* at ranks ``t * |run| / P`` (the internal-memory
variant of multiway selection), an all-to-all moves the pieces, and each
node merges the P pieces it received.  In the best case this all-to-all is
the only time the data crosses the network at all.

The exact splitting itself is computed with the vectorized partition
kernel (bit-identical to the probe-based selection — the algorithms
package asserts that equivalence in tests); its communication is charged
as the sample gather plus the O(P log P log M) coordination messages the
probe algorithm would send, which is what the paper's accounting assumes
(splitting time is reported as negligible).
"""

from __future__ import annotations

import math
from typing import Generator, List

import numpy as np

from ..cluster.cluster import Cluster
from ..records.arrays import exact_multiway_partition_multi, merge_sorted_arrays
from .config import SortConfig
from .stats import SortStats

__all__ = ["distributed_sort_run"]


def distributed_sort_run(
    rank: int,
    cluster: Cluster,
    config: SortConfig,
    stats: SortStats,
    local_keys: np.ndarray,
    tag: str,
    presorted: bool = False,
) -> Generator:
    """SPMD generator: globally sort one run, returning this rank's piece.

    ``local_keys`` is this node's (unsorted) share of the run; the return
    value is the rank-th exact quantile slice of the run, sorted.  All
    ranks must call this the same number of times (collective).
    ``presorted`` skips the local-sort charge when the caller already
    sorted (and paid for) the local data, as the single-run fast path does.
    """
    node = cluster.nodes[rank]
    comm = cluster.comm
    n_nodes = cluster.n_nodes

    # 1. Local sort (shared-memory parallel; cost model on represented size).
    local_sorted = local_keys if presorted else np.sort(local_keys, kind="stable")
    if not presorted:
        yield node.sort_compute(
            config.keys_to_elements(len(local_keys)), config.element.elem_bytes, tag=tag
        )

    if n_nodes == 1:
        return local_sorted

    # 2. Exact splitting.  Communication charge: every rank contributes a
    # sample of its sequence (one key per block) plus the selection's
    # coordination traffic.
    sample_every = config.resolved_sample_every
    sample_bytes = config.keys_to_bytes(
        math.ceil(max(1, len(local_sorted)) / sample_every)
    )
    gathered = yield comm.allgather(rank, local_sorted, nbytes=sample_bytes)
    total = sum(len(g) for g in gathered)
    targets = [t * total // n_nodes for t in range(n_nodes + 1)]
    positions = exact_multiway_partition_multi(gathered, targets)
    levels = math.log2(max(2, len(local_sorted)))
    yield node.compute(
        n_nodes * levels * cluster.spec.net_latency * 2.0, tag=tag
    )

    # 3. All-to-all: slice [positions[d][rank], positions[d+1][rank]) goes
    # to destination d.
    send: List[np.ndarray] = []
    send_bytes: List[float] = []
    for d in range(n_nodes):
        lo = positions[d][rank]
        hi = positions[d + 1][rank]
        piece = local_sorted[lo:hi]
        send.append(piece)
        send_bytes.append(config.keys_to_bytes(len(piece)) if d != rank else 0.0)
    recv, _recv_bytes = yield comm.alltoallv(rank, send, send_bytes)

    # 4. Local P-way merge of the received sorted pieces.
    merged = merge_sorted_arrays(list(recv))
    yield node.merge_compute(
        config.keys_to_elements(len(merged)),
        arity=n_nodes,
        elem_bytes=config.element.elem_bytes,
        tag=tag,
    )
    stats.add_counter(rank, "internal_sort_sent_keys", sum(len(s) for i, s in enumerate(send) if i != rank))
    return merged
