"""Benchmark harness: one entry point per paper table/figure + ablations."""

from .ablations import (
    algorithms_on_skew,
    block_size_sweep,
    canonical_vs_striped,
    hierarchy_ablation,
    overlap_ablation,
    pipeline_ablation,
    prefetch_ablation,
    randomization_ablation,
    run_length_ablation,
    selection_strategies,
    straggler_ablation,
)
from .figures import fig2, fig3, fig4, fig5, fig6
from .harness import (
    PE_COUNTS_FULL,
    PE_COUNTS_QUICK,
    RunRecord,
    paper_config,
    run_canonical,
    sortbench_config,
)
from .planner import SortPlan, plan_sort
from .report import FigureResult, format_table, write_report
from .sweeps import METRICS, save_csv, sweep
from .sortbench import daytona, graysort, minutesort, terabytesort

#: Every regenerable experiment, by id.
EXPERIMENTS = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "graysort": graysort,
    "minutesort": minutesort,
    "terabytesort": terabytesort,
    "daytona": daytona,
    "ablation_selection": selection_strategies,
    "ablation_blocksize": block_size_sweep,
    "ablation_overlap": overlap_ablation,
    "ablation_prefetch": prefetch_ablation,
    "ablation_randomization": randomization_ablation,
    "ablation_skew": algorithms_on_skew,
    "ablation_striped": canonical_vs_striped,
    "ablation_runlength": run_length_ablation,
    "ablation_pipeline": pipeline_ablation,
    "ablation_faults": straggler_ablation,
    "ablation_hierarchy": hierarchy_ablation,
}

__all__ = [
    "EXPERIMENTS",
    "FigureResult",
    "format_table",
    "write_report",
    "RunRecord",
    "paper_config",
    "sortbench_config",
    "run_canonical",
    "PE_COUNTS_FULL",
    "PE_COUNTS_QUICK",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "graysort",
    "minutesort",
    "terabytesort",
    "daytona",
    "selection_strategies",
    "block_size_sweep",
    "overlap_ablation",
    "prefetch_ablation",
    "randomization_ablation",
    "algorithms_on_skew",
    "canonical_vs_striped",
    "run_length_ablation",
    "pipeline_ablation",
    "straggler_ablation",
    "hierarchy_ablation",
    "SortPlan",
    "plan_sort",
    "sweep",
    "save_csv",
    "METRICS",
]
