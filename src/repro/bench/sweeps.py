"""Parameter-sweep engine with CSV output.

The figure regenerators cover the paper's exact experiments; this module
is for *your* experiments: sweep any subset of ``SortConfig`` fields and
node counts over any workload and collect one metrics row per run.

Example::

    from repro.bench.sweeps import sweep, save_csv

    rows = sweep(
        grid={"randomize": [True, False], "block_bytes": [2*MiB, 8*MiB]},
        n_nodes=[2, 4, 8],
        workload="worstcase",
    )
    save_csv(rows, "sweep.csv")
"""

from __future__ import annotations

import csv
import itertools
from typing import Dict, Iterable, List, Sequence

from ..cluster.machine import MachineSpec, PAPER_MACHINE
from .harness import paper_config, run_canonical

__all__ = ["sweep", "save_csv", "METRICS"]

#: Metric columns every sweep row carries.
METRICS = [
    "total_s",
    "run_formation_s",
    "selection_s",
    "all_to_all_s",
    "merge_s",
    "io_per_n",
    "net_per_n",
    "alltoall_volume_ratio",
    "throughput_gb_per_min",
]


def _metrics_row(record) -> Dict[str, float]:
    stats = record.stats
    return {
        "total_s": record.total_seconds,
        "run_formation_s": record.phase_seconds("run_formation"),
        "selection_s": record.phase_seconds("selection"),
        "all_to_all_s": record.phase_seconds("all_to_all"),
        "merge_s": record.phase_seconds("merge"),
        "io_per_n": stats.total_io_bytes / record.simulated_bytes,
        "net_per_n": stats.network_bytes / record.simulated_bytes,
        "alltoall_volume_ratio": record.alltoall_volume_ratio,
        "throughput_gb_per_min": record.throughput_gb_per_min,
    }


def sweep(
    grid: Dict[str, Sequence],
    n_nodes: Iterable[int] = (4,),
    workload: str = "random",
    spec: MachineSpec = PAPER_MACHINE,
    base_config=None,
    validate: bool = True,
) -> List[Dict[str, object]]:
    """Run the cross product of ``grid`` x ``n_nodes``; return metric rows.

    ``grid`` maps :class:`~repro.core.config.SortConfig` field names to
    candidate values.  Each row contains the swept parameters, the node
    count and workload, plus the :data:`METRICS` columns.
    """
    base = base_config if base_config is not None else paper_config()
    names = sorted(grid)
    rows: List[Dict[str, object]] = []
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        config = base.with_overrides(**overrides)
        for p in n_nodes:
            record = run_canonical(
                p, workload, config=config, spec=spec, validate=validate
            )
            row: Dict[str, object] = {"n_nodes": p, "workload": workload}
            row.update(overrides)
            row.update(_metrics_row(record))
            rows.append(row)
    return rows


def save_csv(rows: List[Dict[str, object]], path: str) -> str:
    """Write sweep rows to ``path`` as CSV; returns the path."""
    if not rows:
        raise ValueError("no rows to save")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header)
        writer.writeheader()
        writer.writerows(rows)
    return path
