"""Benchmark harness: paper-scale configurations and single-run drivers.

The harness expresses every experiment of Section VI in the paper's own
units.  The default configuration mirrors the scalability experiments:
100 GiB of 16-byte elements per PE, 16 GiB nodes (12 GiB usable for run
data), 8 MiB blocks — simulated at ``downscale = 96`` so that one run
piece spans 16 simulated blocks and R ≈ 9 runs form, the same run count
the paper's ratios produce (see DESIGN.md §5 for the scaling rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.machine import GiB, MachineSpec, MiB, PAPER_MACHINE
from ..core.canonical import CanonicalMergeSort, SortResult
from ..core.config import SortConfig
from ..records.element import ELEM_PAPER_16B, ELEM_SORTBENCH_100B
from ..workloads.generators import generate_input, input_keys
from ..workloads.gensort import generate_gensort_input
from ..workloads.validation import validate_output

__all__ = [
    "PE_COUNTS_FULL",
    "PE_COUNTS_QUICK",
    "paper_config",
    "sortbench_config",
    "run_canonical",
    "RunRecord",
]

#: The x-axis of Figures 2 and 4-6.
PE_COUNTS_FULL = [1, 2, 4, 8, 16, 32, 64]
#: Reduced sweep for CI-speed benchmark runs.
PE_COUNTS_QUICK = [1, 2, 4, 8]


def paper_config(**overrides) -> SortConfig:
    """The Section VI scalability setup (100 GiB/PE of 16-byte elements)."""
    params = dict(
        element=ELEM_PAPER_16B,
        data_per_node_bytes=100 * GiB,
        memory_bytes=12 * GiB,
        block_bytes=8 * MiB,
        downscale=96,
        block_elems=32,
        randomize=True,
    )
    params.update(overrides)
    return SortConfig(**params)


def sortbench_config(
    data_per_node_bytes: float, downscale: float, **overrides
) -> SortConfig:
    """A SortBenchmark setup: 100-byte records, 10-byte keys."""
    params = dict(
        element=ELEM_SORTBENCH_100B,
        data_per_node_bytes=data_per_node_bytes,
        memory_bytes=12 * GiB,
        block_bytes=8 * MiB,
        downscale=downscale,
        block_elems=32,
        randomize=True,
    )
    params.update(overrides)
    return SortConfig(**params)


@dataclass
class RunRecord:
    """One harness execution: result plus derived paper-scale metrics."""

    n_nodes: int
    workload: str
    result: SortResult
    validated: bool

    @property
    def stats(self):
        return self.result.stats

    @property
    def config(self) -> SortConfig:
        return self.result.config

    @property
    def total_bytes(self) -> float:
        """Full paper-scale input bytes over the machine (the paper's N)."""
        return self.config.data_per_node_bytes * self.n_nodes

    @property
    def simulated_bytes(self) -> float:
        """Represented bytes actually simulated (N / downscale)."""
        return self.config.total_bytes(self.n_nodes)

    @property
    def total_seconds(self) -> float:
        """Estimated paper-scale end-to-end seconds."""
        return self.stats.scaled_total_time

    @property
    def throughput_gb_per_min(self) -> float:
        """Sorted GB (decimal) per minute — the GraySort metric."""
        if self.total_seconds == 0:
            return 0.0
        return (self.total_bytes / 1e9) / (self.total_seconds / 60.0)

    @property
    def alltoall_volume_ratio(self) -> float:
        """All-to-all phase I/O volume divided by N (Figure 5's y-axis).

        Both numerator and denominator are simulated volumes; the ratio is
        downscale-invariant.
        """
        return self.stats.phase_bytes("all_to_all") / self.simulated_bytes

    def phase_seconds(self, phase: str) -> float:
        return self.stats.scaled_wall_max(phase)


def run_canonical(
    n_nodes: int,
    workload: str = "random",
    config: Optional[SortConfig] = None,
    spec: MachineSpec = PAPER_MACHINE,
    validate: bool = True,
    seed: Optional[int] = None,
) -> RunRecord:
    """Execute one CanonicalMergeSort on a fresh simulated cluster."""
    config = config if config is not None else paper_config()
    cluster = Cluster(n_nodes, spec=spec)
    if workload == "gensort":
        em, inputs = generate_gensort_input(
            cluster, config, seed=seed if seed is not None else config.seed
        )
    else:
        em, inputs = generate_input(cluster, config, kind=workload, seed=seed)
    before = input_keys(em, inputs) if validate else None
    result = CanonicalMergeSort(cluster, config).sort(em, inputs)
    validated = False
    if validate:
        report = validate_output(before, result.output_keys(em))
        report.raise_if_failed()
        validated = True
    return RunRecord(
        n_nodes=n_nodes, workload=workload, result=result, validated=validated
    )
