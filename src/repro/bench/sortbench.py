"""SortBenchmark categories (paper Section VI, second half).

The paper's headline results are SortBenchmark entries with 100-byte
records and 10-byte keys on 195 nodes / 780 disks:

* **Indy GraySort** — 10^14 bytes in just under 3 hours ≈ 564 GB/min,
  leading the 2009 category;
* **MinuteSort** — 955 GB sorted within one minute (3.6x the former
  record of TokuSampleSort), an *internal* sort since N < M;
* **TerabyteSort** — 10^12 bytes in < 64 s, about a third of
  TokuSampleSort's 2007 time.

``quick=True`` simulates a 16-node slice of the machine under the full
195-node fabric congestion and reports machine-scale numbers by scaling
node-proportional quantities (data volume) to 195 nodes — honest because
the algorithm is communication-light and per-node load is identical.
``quick=False`` simulates all 195 nodes.
"""

from __future__ import annotations

import math
from ..cluster.machine import GiB, MachineSpec, MiB, PAPER_MACHINE
from .harness import run_canonical, sortbench_config
from .report import FigureResult

__all__ = ["graysort", "minutesort", "terabytesort", "PAPER_NODES", "PAPER_DISKS"]

#: The paper's SortBenchmark machine.
PAPER_NODES = 195
PAPER_DISKS = 780


def _congested_spec(full_nodes: int = PAPER_NODES) -> MachineSpec:
    """A spec whose network already carries ``full_nodes`` of congestion.

    Used by quick mode so a 16-node slice sees the 195-node fabric.
    """
    bw = PAPER_MACHINE.net_bandwidth(full_nodes)
    return PAPER_MACHINE.with_overrides(
        net_p2p_bandwidth=bw, net_min_bandwidth=bw, net_congestion=0.0
    )


def _nodes_and_spec(quick: bool):
    if quick:
        return 16, _congested_spec()
    return PAPER_NODES, PAPER_MACHINE


def graysort(quick: bool = True) -> FigureResult:
    """Indy GraySort: sort 10^14 bytes, metric is GB sorted per minute."""
    n_nodes, spec = _nodes_and_spec(quick)
    data_per_node = 1e14 / PAPER_NODES
    # R = 40 runs at 12 GiB of run memory; keep >= R blocks per piece.
    config = sortbench_config(data_per_node_bytes=data_per_node, downscale=24)
    record = run_canonical(n_nodes, "gensort", config=config, spec=spec)
    machine_bytes = data_per_node * PAPER_NODES
    seconds = record.total_seconds
    gb_min = (machine_bytes / 1e9) / (seconds / 60.0)
    rows = [
        {"entry": "this reproduction (simulated)", "nodes": PAPER_NODES,
         "disks": PAPER_DISKS, "GB/min": gb_min, "time [s]": seconds},
        {"entry": "DEMSort (paper, 2009 winner)", "nodes": 195, "disks": 780,
         "GB/min": 564.0, "time [s]": 1e14 / 1e9 / 564.0 * 60.0},
        {"entry": "Yahoo Hadoop (2009)", "nodes": 3452, "disks": 13808,
         "GB/min": 578.0, "time [s]": 1e14 / 1e9 / 578.0 * 60.0},
        {"entry": "Google MapReduce (2008, 10x data)", "nodes": 4000,
         "disks": 48000, "GB/min": 1e15 / 1e9 / (6 * 3600 + 120) * 60.0,
         "time [s]": 6 * 3600 + 120},
    ]
    notes = [
        f"simulated machine sorts 10^14 bytes in {seconds:,.0f} s = {gb_min:,.0f} GB/min "
        f"(paper: 564 GB/min; ratio {gb_min / 564.0:.2f})",
        f"runs formed R = {record.result.n_runs} (paper-scale R = "
        f"{math.ceil(data_per_node / (12 * GiB))})",
        "competitor rows are the published numbers the paper cites, not code",
    ]
    if quick:
        notes.append(
            f"quick mode: {record.n_nodes}-node slice under full-fabric congestion, "
            "scaled to 195 nodes"
        )
    return FigureResult(
        "graysort",
        "Indy GraySort (10^14 bytes, 100-byte records)",
        ["entry", "nodes", "disks", "GB/min", "time [s]"],
        rows,
        paper_claims=[
            "564 GB/min with 195 nodes and 780 disks, leading Indy GraySort 2009",
            "Yahoo's 578 GB/min uses 17x the nodes — far worse efficiency",
            "Google's informal 1 PB run uses 61x the disks for 5x the speed",
        ],
        notes=notes,
    )


def minutesort(quick: bool = True, budget_seconds: float = 60.0) -> FigureResult:
    """MinuteSort: how much data sorts in one minute (N < M, internal)."""
    n_nodes, spec = _nodes_and_spec(quick)

    def time_for(total_bytes: float) -> float:
        per_node = total_bytes / PAPER_NODES
        downscale = max(1.0, per_node / (96 * 8 * MiB))  # ~96 blocks/node
        config = sortbench_config(per_node, downscale=downscale)
        record = run_canonical(n_nodes, "gensort", config=config, spec=spec)
        return record.total_seconds

    lo, hi = 100e9, 4000e9
    for _ in range(9):
        mid = (lo + hi) / 2
        if time_for(mid) <= budget_seconds:
            lo = mid
        else:
            hi = mid
    sorted_gb = lo / 1e9
    rows = [
        {"entry": "this reproduction (simulated)", "data [GB]": sorted_gb,
         "nodes": PAPER_NODES},
        {"entry": "DEMSort (paper, 2009)", "data [GB]": 955.0, "nodes": 195},
        {"entry": "TokuSampleSort (2007 record)", "data [GB]": 955.0 / 3.6,
         "nodes": 400},
        {"entry": "Yahoo Hadoop (2009)", "data [GB]": 500.0, "nodes": 1406},
    ]
    return FigureResult(
        "minutesort",
        "MinuteSort (data sorted within 60 seconds)",
        ["entry", "data [GB]", "nodes"],
        rows,
        paper_claims=[
            "955 GB in one minute — 3.6x the former TokuSampleSort record",
            "Yahoo reaches about half with a machine 7 times as large",
            "N < M: the sort is merely internal, 2 I/Os per block",
        ],
        notes=[
            f"simulated: {sorted_gb:,.0f} GB within {budget_seconds:.0f} s "
            f"(paper: 955 GB; ratio {sorted_gb / 955.0:.2f})",
        ],
    )


def terabytesort(quick: bool = True) -> FigureResult:
    """TerabyteSort: time to sort 10^12 bytes (rendered obsolete in 2009)."""
    n_nodes, spec = _nodes_and_spec(quick)
    per_node = 1e12 / PAPER_NODES
    downscale = max(1.0, per_node / (96 * 8 * MiB))
    config = sortbench_config(per_node, downscale=downscale)
    record = run_canonical(n_nodes, "gensort", config=config, spec=spec)
    seconds = record.total_seconds
    rows = [
        {"entry": "this reproduction (simulated)", "time [s]": seconds,
         "nodes": PAPER_NODES, "disks": PAPER_DISKS},
        {"entry": "DEMSort (paper)", "time [s]": 64.0, "nodes": 195, "disks": 780},
        {"entry": "TokuSampleSort (2007 winner)", "time [s]": 64.0 * 3.0,
         "nodes": 400, "disks": 780 / 3},
        {"entry": "Google (informal, 2008)", "time [s]": 68.0, "nodes": 1000,
         "disks": 12000},
    ]
    return FigureResult(
        "terabytesort",
        "TerabyteSort (10^12 bytes)",
        ["entry", "time [s]", "nodes", "disks"],
        rows,
        paper_claims=[
            "10^12 bytes in less than 64 s — a third of TokuSampleSort's time "
            "with the same cores and a third of the disks",
            "slightly better than Google's informal result that used 12000 disks",
        ],
        notes=[
            f"simulated: {seconds:,.1f} s (paper: < 64 s; N < M so the in-memory "
            "fast path with 2 I/Os per block applies)",
        ],
    )


def daytona(quick: bool = True) -> FigureResult:
    """Daytona-style robustness: skewed benchmark records.

    The paper entered the Indy category (uniform keys assumed); the
    Daytona category requires surviving arbitrary key distributions.
    Exact multiway selection makes CanonicalMergeSort Daytona-robust for
    free — this experiment sorts duplicate-heavy records and contrasts
    the NOW-Sort baseline's collapse on the same input.
    """
    from ..baselines.nowsort import NowSort
    from ..cluster.cluster import Cluster
    from ..core.canonical import CanonicalMergeSort
    from ..workloads.generators import input_keys
    from ..workloads.gensort import generate_gensort_input
    from ..workloads.validation import validate_output

    n_nodes, spec = _nodes_and_spec(quick)
    data_per_node = 1e12 / PAPER_NODES * 4  # a few TB total: skew demo
    config = sortbench_config(data_per_node, downscale=8)
    rows = []
    for label, factory, balanced in [
        ("CanonicalMergeSort (exact splitting)",
         lambda c: CanonicalMergeSort(c, config), True),
        ("NowSort (uniform splitters)",
         lambda c: NowSort(c, config, "uniform"), False),
    ]:
        cluster = Cluster(n_nodes, spec=spec)
        em, inputs = generate_gensort_input(cluster, config, seed=3, skew=True)
        before = input_keys(em, inputs)
        result = factory(cluster).sort(em, inputs)
        validate_output(
            before, result.output_keys(em), balanced=balanced
        ).raise_if_failed()
        rows.append(
            {
                "algorithm": label,
                "imbalance (max/ideal)": getattr(result, "imbalance", 1.0),
                "total [s]": result.stats.scaled_total_time,
            }
        )
    return FigureResult(
        "daytona",
        "Daytona-style robustness (duplicate-heavy benchmark records)",
        ["algorithm", "imbalance (max/ideal)", "total [s]"],
        rows,
        paper_claims=[
            "exact splitting guarantees the canonical balanced output for "
            "any input distribution (§IV)",
            "NOW-Sort deteriorates when the data concentrates (§II)",
        ],
        notes=[
            "the paper entered Indy; Daytona robustness falls out of the "
            "algorithm's exactness with no extra machinery",
        ],
    )
