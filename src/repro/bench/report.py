"""Plain-text table rendering and result persistence for the harness."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["FigureResult", "format_table", "write_report"]


@dataclass
class FigureResult:
    """One reproduced table or figure: rows plus paper-side context."""

    #: Experiment id, e.g. "fig2" or "graysort".
    name: str
    #: Human title, e.g. "Figure 2: running times, random input".
    title: str
    #: Column names, in display order.
    header: List[str]
    #: One dict per row (keys are header names).
    rows: List[Dict[str, object]]
    #: What the paper reports for this experiment (for EXPERIMENTS.md).
    paper_claims: List[str] = field(default_factory=list)
    #: Observations about the measured shape.
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title), ""]
        lines.append(format_table(self.header, self.rows))
        if self.paper_claims:
            lines.append("")
            lines.append("Paper reports:")
            lines.extend(f"  - {c}" for c in self.paper_claims)
        if self.notes:
            lines.append("")
            lines.append("Measured (this reproduction):")
            lines.extend(f"  - {n}" for n in self.notes)
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(header: Sequence[str], rows: List[Dict[str, object]]) -> str:
    """Fixed-width text table from header names and row dicts."""
    cells = [[_fmt(row.get(col, "")) for col in header] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(header)
    ]
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))
    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def write_report(result: FigureResult, out_dir: Optional[str] = None) -> str:
    """Persist a rendered report under ``bench_results/``; returns the path."""
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{result.name}.txt")
    with open(path, "w") as handle:
        handle.write(result.render() + "\n")
    return path
