"""Reproductions of the paper's Figures 2-6 (Section VI).

Every function runs the corresponding experiment on the simulated cluster
and returns a :class:`~repro.bench.report.FigureResult` whose rows mirror
the figure's series.  ``quick=True`` sweeps P = 1..8 (CI speed);
``quick=False`` sweeps the paper's full P = 1..64.

Times are *estimated paper-scale seconds* (simulated seconds × downscale
for the volume-bound phases); the claims we check are therefore about
shape — which phase dominates, how curves order, where randomization
helps — not about matching the authors' wall clock to the second.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster.machine import MiB
from .harness import PE_COUNTS_FULL, PE_COUNTS_QUICK, paper_config, run_canonical
from .report import FigureResult

__all__ = ["fig2", "fig3", "fig4", "fig5", "fig6"]

_PHASES = ["run_formation", "selection", "all_to_all", "merge"]
_PHASE_COLS = {
    "run_formation": "run formation [s]",
    "selection": "multiway selection [s]",
    "all_to_all": "all-to-all [s]",
    "merge": "final merge [s]",
}


def _pe_counts(quick: bool, cap: Optional[int] = None) -> List[int]:
    counts = PE_COUNTS_QUICK if quick else PE_COUNTS_FULL
    if cap is not None:
        counts = [p for p in counts if p <= cap]
    return counts


def _phase_sweep(name, title, workload, randomize, quick, paper_claims):
    rows = []
    records = []
    for n_nodes in _pe_counts(quick):
        record = run_canonical(
            n_nodes, workload, config=paper_config(randomize=randomize)
        )
        records.append(record)
        row = {"#PEs": n_nodes}
        for phase in _PHASES:
            row[_PHASE_COLS[phase]] = record.phase_seconds(phase)
        row["total [s]"] = record.total_seconds
        rows.append(row)
    first, last = records[0], records[-1]
    notes = [
        f"total grows {last.total_seconds / first.total_seconds:.2f}x from "
        f"P={first.n_nodes} to P={last.n_nodes} "
        f"(perfect scalability would be 1.0x at fixed data per PE)",
        f"run formation / final merge ratio at P={last.n_nodes}: "
        f"{last.phase_seconds('run_formation') / max(1e-9, last.phase_seconds('merge')):.2f}",
        f"multiway selection share of total at P={last.n_nodes}: "
        f"{100 * last.phase_seconds('selection') / last.total_seconds:.2f} %",
    ]
    header = ["#PEs"] + [_PHASE_COLS[p] for p in _PHASES] + ["total [s]"]
    return FigureResult(name, title, header, rows, paper_claims, notes)


def fig2(quick: bool = True) -> FigureResult:
    """Figure 2: per-phase running times for random input, P = 1..64."""
    return _phase_sweep(
        "fig2",
        "Figure 2: running times for random input, split by phase "
        "(100 GiB / PE, 16-byte elements)",
        workload="random",
        randomize=True,
        quick=quick,
        paper_claims=[
            "scalability is very good for random input (near-flat totals, ~2200-2800 s)",
            "run formation takes about the same time as the final merging",
            "multiway selection takes negligible time",
            "average I/O bandwidth per disk about 50 MiB/s (> 2/3 of peak)",
        ],
    )


def fig3(quick: bool = True) -> FigureResult:
    """Figure 3: per-PE wall-clock and I/O time of each phase (32 nodes)."""
    n_nodes = 8 if quick else 32
    record = run_canonical(n_nodes, "random", config=paper_config())
    stats = record.stats
    rows = []
    for rank in range(n_nodes):
        row = {"PE": rank}
        for phase in _PHASES:
            st = stats.per_node[rank][phase]
            row[f"{phase} wall [s]"] = stats.scaled_seconds(st.wall, phase)
            row[f"{phase} io [s]"] = stats.scaled_seconds(st.io, phase)
        rows.append(row)
    header = ["PE"]
    for phase in _PHASES:
        header += [f"{phase} wall [s]", f"{phase} io [s]"]
    walls = [stats.per_node[r]["merge"].wall for r in range(n_nodes)]
    rf_wall = stats.wall_max("run_formation")
    rf_io = stats.io_max("run_formation")
    notes = [
        f"merge wall-time imbalance (max/mean) = "
        f"{max(walls) / (sum(walls) / len(walls)):.3f} (disk-speed variance)",
        f"run formation wall/io = {rf_wall / max(1e-9, rf_io):.2f} "
        "(> 1: not fully I/O-bound, the grey gap of the paper's figure)",
    ]
    return FigureResult(
        "fig3",
        f"Figure 3: per-PE wall-clock and I/O time per phase ({n_nodes} nodes, random input)",
        header,
        rows,
        paper_claims=[
            "the work is very well balanced, but there is some variance in disk speed",
            "run formation is not fully I/O-bound (grey gap); other phases are",
        ],
        notes=notes,
    )


def fig4(quick: bool = True) -> FigureResult:
    """Figure 4: worst-case input *with* randomization, P = 1..64."""
    return _phase_sweep(
        "fig4",
        "Figure 4: running times for worst-case input with randomization",
        workload="worstcase",
        randomize=True,
        quick=quick,
        paper_claims=[
            "randomization diminishes the worst-case overhead "
            "(totals close to the random-input case of Figure 2)",
        ],
    )


def fig6(quick: bool = True) -> FigureResult:
    """Figure 6: worst-case input *without* randomization, P = 1..64."""
    return _phase_sweep(
        "fig6",
        "Figure 6: running times for worst-case input without randomization",
        workload="worstcase",
        randomize=False,
        quick=quick,
        paper_claims=[
            "a penalty of up to 50% in running time can appear, caused by the "
            "additional I/O of the all-to-all phase",
        ],
    )


def fig5(quick: bool = True) -> FigureResult:
    """Figure 5: all-to-all I/O volume divided by N, four input regimes."""
    series = [
        ("worst-case, non-randomized", "worstcase", False, 8 * MiB),
        ("worst-case, randomized, B=8MiB", "worstcase", True, 8 * MiB),
        ("worst-case, randomized, B=2MiB", "worstcase", True, 2 * MiB),
        ("random input", "random", True, 8 * MiB),
    ]
    rows = []
    ratios = {}
    for n_nodes in _pe_counts(quick):
        row = {"#PEs": n_nodes}
        for label, workload, randomize, block_bytes in series:
            config = paper_config(randomize=randomize, block_bytes=block_bytes)
            record = run_canonical(n_nodes, workload, config=config)
            ratio = record.alltoall_volume_ratio
            row[label] = ratio
            ratios.setdefault(label, []).append(ratio)
        rows.append(row)
    header = ["#PEs"] + [label for label, *_ in series]
    last = {label: vals[-1] for label, vals in ratios.items()}
    notes = [
        "ordering at largest P: "
        + " > ".join(
            f"{label} ({last[label]:.3f})"
            for label in sorted(last, key=last.get, reverse=True)
        ),
        f"randomization reduces the worst-case ratio by "
        f"{last['worst-case, non-randomized'] / max(1e-9, last['worst-case, randomized, B=8MiB']):.1f}x at B=8MiB",
        f"smaller blocks reduce it further by "
        f"{last['worst-case, randomized, B=8MiB'] / max(1e-9, last['worst-case, randomized, B=2MiB']):.1f}x "
        "(the sqrt(B) dependence of Appendix C)",
        "block-granularity floor: at simulation downscale the partial-block "
        "overhead per run is a larger fraction of N than at paper scale, "
        "raising the 'random input' floor (DESIGN.md §5)",
    ]
    return FigureResult(
        "fig5",
        "Figure 5: I/O volume of the all-to-all phase divided by N",
        header,
        rows,
        paper_claims=[
            "worst-case non-randomized moves (almost) all data (ratio ~2)",
            "randomization reduces the I/O volume greatly",
            "B=2MiB improves the effect of randomization further (sqrt(B) law)",
            "random input needs only a tiny all-to-all volume",
        ],
        notes=notes,
    )
