"""Ablation studies for the design choices the paper calls out.

These are not figures from the paper but experiments its design sections
imply (DESIGN.md's quality gates):

* ``selection_strategies`` — §IV-A's optimizations: cold-start step
  halving vs. sample-warm start vs. the provable bisection (Appendix B);
* ``block_size_sweep`` — the B trade-off of Appendix C (data movement
  shrinks with sqrt(B), raw streaming favours large B);
* ``overlap`` — §IV-E's overlapping of I/O, computation, communication;
* ``prefetch`` — Appendix A's optimal schedule vs. naive prediction order;
* ``randomization`` — the core §IV randomization switch, per workload;
* ``algorithms_on_skew`` — CanonicalMergeSort vs. NOW-Sort vs. external
  sample sort on skewed input (the robustness claim of §II);
* ``canonical_vs_striped`` — communication volume of §IV vs. §III.
"""

from __future__ import annotations

import numpy as np

from ..baselines.nowsort import NowSort
from ..baselines.samplesort import ExternalSampleSort
from ..cluster.cluster import Cluster
from ..cluster.machine import GiB, MiB
from ..core.canonical import CanonicalMergeSort
from ..core.striped import GlobalStripedMergeSort
from ..workloads.generators import generate_input, input_keys
from ..workloads.validation import validate_output
from .harness import paper_config, run_canonical
from .report import FigureResult

__all__ = [
    "selection_strategies",
    "block_size_sweep",
    "overlap_ablation",
    "prefetch_ablation",
    "randomization_ablation",
    "algorithms_on_skew",
    "canonical_vs_striped",
    "run_length_ablation",
    "pipeline_ablation",
    "straggler_ablation",
    "hierarchy_ablation",
]

_QUICK_P = 4


def selection_strategies(quick: bool = True) -> FigureResult:
    """Cost of the three multiway-selection strategies (§IV-A, App. B)."""
    n_nodes = _QUICK_P if quick else 16
    rows = []
    for strategy in ["basic", "sampled", "bisect"]:
        record = run_canonical(
            n_nodes, "random", config=paper_config(selection=strategy)
        )
        stats = record.stats
        rows.append(
            {
                "strategy": strategy,
                "element probes": stats.counter_total("selection_touches"),
                "block reads": stats.counter_total("selection_block_reads"),
                "cache hits": stats.counter_total("selection_cache_hits"),
                "fixup swaps": stats.counter_total("selection_fixup_swaps"),
                "selection wall [s]": record.phase_seconds("selection"),
            }
        )
    notes = [
        "the sample warm start (the paper's implementation) cuts probes and "
        "block reads by an order of magnitude versus the cold start",
        "bisection bounds the worst case at a modest constant overhead",
    ]
    return FigureResult(
        "ablation_selection",
        "Ablation: multiway-selection strategies",
        ["strategy", "element probes", "block reads", "cache hits",
         "fixup swaps", "selection wall [s]"],
        rows,
        paper_claims=[
            "sampling + caching make selection time negligible (§IV-A)",
            "the Appendix B variant provably scales to very large machines",
        ],
        notes=notes,
    )


def block_size_sweep(quick: bool = True) -> FigureResult:
    """Block-size trade-off on worst-case input (Appendix C)."""
    n_nodes = _QUICK_P if quick else 16
    rows = []
    for block_bytes in [1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB]:
        # Fixed downscale: smaller B means more, finer simulated blocks,
        # exactly how Figure 5's B = 2 MiB series is produced.
        record = run_canonical(
            n_nodes,
            "worstcase",
            config=paper_config(block_bytes=block_bytes),
        )
        rows.append(
            {
                "B [MiB]": block_bytes / MiB,
                "all-to-all volume / N": record.alltoall_volume_ratio,
                "run formation [s]": record.phase_seconds("run_formation"),
                "total [s]": record.total_seconds,
            }
        )
    return FigureResult(
        "ablation_blocksize",
        "Ablation: block size B on randomized worst-case input",
        ["B [MiB]", "all-to-all volume / N", "run formation [s]", "total [s]"],
        rows,
        paper_claims=[
            "data movement grows with sqrt(B) (Appendix C; Figure 5 supports it)",
            "smaller blocks cost a little I/O performance (more seeks)",
        ],
        notes=["movement ratio falls and run formation rises as B shrinks"],
    )


def overlap_ablation(quick: bool = True) -> FigureResult:
    """Effect of overlapping I/O with computation/communication (§IV-E)."""
    n_nodes = _QUICK_P if quick else 16
    rows = []
    for overlap in [True, False]:
        record = run_canonical(
            n_nodes, "random", config=paper_config(overlap=overlap)
        )
        rows.append(
            {
                "overlap": "on" if overlap else "off",
                "run formation [s]": record.phase_seconds("run_formation"),
                "all-to-all [s]": record.phase_seconds("all_to_all"),
                "total [s]": record.total_seconds,
            }
        )
    speedup = rows[1]["total [s]"] / rows[0]["total [s]"]
    return FigureResult(
        "ablation_overlap",
        "Ablation: overlapping I/O with computation and communication",
        ["overlap", "run formation [s]", "all-to-all [s]", "total [s]"],
        rows,
        paper_claims=[
            "run formation overlaps writing run i-1, sorting run i, fetching run i+1",
        ],
        notes=[f"disabling overlap slows the sort by {speedup:.2f}x"],
    )


def prefetch_ablation(quick: bool = True) -> FigureResult:
    """Optimal duality-based prefetch schedule vs naive order (App. A)."""
    n_nodes = _QUICK_P if quick else 16
    rows = []
    for optimal in [True, False]:
        for buffers in [8, 16, 32]:
            record = run_canonical(
                n_nodes,
                "random",
                config=paper_config(
                    optimal_prefetch=optimal, prefetch_buffers=buffers
                ),
            )
            rows.append(
                {
                    "schedule": "optimal" if optimal else "naive",
                    "buffers": buffers,
                    "merge [s]": record.phase_seconds("merge"),
                    "total [s]": record.total_seconds,
                }
            )
    return FigureResult(
        "ablation_prefetch",
        "Ablation: prefetch schedule and buffer count in the merge phase",
        ["schedule", "buffers", "merge [s]", "total [s]"],
        rows,
        paper_claims=[
            "the duality-based schedule is efficient already for Ω(D) buffers, "
            "the naive order may need Ω(D log D) (Appendix A)",
        ],
        notes=["optimal scheduling matters most at small buffer counts"],
    )


def randomization_ablation(quick: bool = True) -> FigureResult:
    """Randomization on/off across workloads — the core §IV insurance."""
    n_nodes = _QUICK_P if quick else 16
    rows = []
    for workload in ["random", "worstcase", "sorted", "reversed"]:
        for randomize in [True, False]:
            record = run_canonical(
                n_nodes, workload, config=paper_config(randomize=randomize)
            )
            rows.append(
                {
                    "workload": workload,
                    "randomized": "yes" if randomize else "no",
                    "all-to-all volume / N": record.alltoall_volume_ratio,
                    "total [s]": record.total_seconds,
                }
            )
    return FigureResult(
        "ablation_randomization",
        "Ablation: run-formation block randomization per workload",
        ["workload", "randomized", "all-to-all volume / N", "total [s]"],
        rows,
        paper_claims=[
            "randomized block selection makes all runs resemble the global "
            "distribution, keeping redistribution negligible",
        ],
        notes=[
            "only locally-ordered (worst-case) inputs need the insurance; "
            "random input is immune either way",
        ],
    )


def algorithms_on_skew(quick: bool = True) -> FigureResult:
    """Exact splitting vs splitter-guessing baselines on skewed input."""
    n_nodes = _QUICK_P if quick else 8
    config = paper_config(
        data_per_node_bytes=12 * GiB, memory_bytes=4 * GiB, downscale=24
    )
    rows = []
    for workload in ["random", "skewed"]:
        for label, factory in [
            ("CanonicalMergeSort", lambda c, cfg: CanonicalMergeSort(c, cfg)),
            ("NowSort (uniform splitters)", lambda c, cfg: NowSort(c, cfg, "uniform")),
            ("NowSort (sampled splitters)", lambda c, cfg: NowSort(c, cfg, "sampled")),
            ("ExternalSampleSort", lambda c, cfg: ExternalSampleSort(c, cfg)),
        ]:
            cluster = Cluster(n_nodes)
            em, inputs = generate_input(cluster, config, workload)
            before = input_keys(em, inputs)
            result = factory(cluster, config).sort(em, inputs)
            balanced = label == "CanonicalMergeSort"
            validate_output(
                before, result.output_keys(em), balanced=balanced
            ).raise_if_failed()
            imbalance = getattr(result, "imbalance", 1.0)
            rows.append(
                {
                    "workload": workload,
                    "algorithm": label,
                    "imbalance (max/ideal)": imbalance,
                    "io / N": result.stats.total_io_bytes
                    / config.total_bytes(n_nodes),
                    "total [s]": result.stats.scaled_total_time,
                }
            )
    return FigureResult(
        "ablation_skew",
        "Exact splitting vs splitter guessing (random vs skewed input)",
        ["workload", "algorithm", "imbalance (max/ideal)", "io / N", "total [s]"],
        rows,
        paper_claims=[
            "NOW-Sort only works efficiently for random inputs; in the worst "
            "case it deteriorates to a sequential algorithm (§II)",
            "splitter preprocessing costs an additional scan and still does "
            "not give exact partitioning (§II)",
        ],
        notes=[
            "CanonicalMergeSort's imbalance is exactly 1.0 by construction",
        ],
    )


def canonical_vs_striped(quick: bool = True) -> FigureResult:
    """Communication volume: CanonicalMergeSort (§IV) vs striping (§III)."""
    n_nodes = _QUICK_P if quick else 8
    config = paper_config(
        data_per_node_bytes=12 * GiB, memory_bytes=4 * GiB, downscale=24
    )
    rows = []
    for label, factory, getter in [
        (
            "CanonicalMergeSort",
            lambda c: CanonicalMergeSort(c, config),
            lambda res, em: np.concatenate(res.output_keys(em)),
        ),
        (
            "GlobalStripedMergeSort",
            lambda c: GlobalStripedMergeSort(c, config),
            lambda res, em: res.global_keys(em),
        ),
    ]:
        cluster = Cluster(n_nodes)
        em, inputs = generate_input(cluster, config, "random")
        before = np.sort(np.concatenate(input_keys(em, inputs)))
        result = factory(cluster).sort(em, inputs)
        out = getter(result, em)
        if not np.array_equal(before, out):
            raise AssertionError(f"{label} produced an incorrect ordering")
        total = config.total_bytes(n_nodes)
        rows.append(
            {
                "algorithm": label,
                "communication / N": result.stats.network_bytes / total,
                "io / N": result.stats.total_io_bytes / total,
                "total [s]": result.stats.scaled_total_time,
            }
        )
    return FigureResult(
        "ablation_striped",
        "CanonicalMergeSort vs globally striped mergesort",
        ["algorithm", "communication / N", "io / N", "total [s]"],
        rows,
        paper_claims=[
            "the striped algorithm needs 4-5 communications for two passes; "
            "CanonicalMergeSort communicates the data only once in the best case",
            "both need about two passes of I/O (4N bytes)",
        ],
        notes=[],
    )


def run_length_ablation(quick: bool = True) -> FigureResult:
    """Replacement-selection run lengths (§VII / Knuth 5.4.1).

    The outlook's longer-runs idea: snow-plow run formation yields runs of
    expected length 2M on random input, halving R — "by decreasing the
    number of runs, we can further increase the block size".
    """
    from ..algos.replacement_selection import run_length_stats

    n = 20_000 if quick else 200_000
    memory = 512
    rng = np.random.default_rng(0)
    inputs = {
        "random": rng.integers(0, 2 ** 60, n),
        "sorted": np.arange(n),
        "reverse-sorted": np.arange(n)[::-1].copy(),
        "nearly sorted (1% swaps)": _nearly_sorted(rng, n),
    }
    rows = []
    for label, keys in inputs.items():
        stats = run_length_stats(keys, memory)
        load_sort_runs = -(-n // memory)
        rows.append(
            {
                "input": label,
                "runs (replacement sel.)": stats["n_runs"],
                "runs (memory-load sort)": load_sort_runs,
                "mean run / M": stats["length_over_memory"],
            }
        )
    return FigureResult(
        "ablation_runlength",
        "Ablation: replacement-selection run formation (§VII longer runs)",
        ["input", "runs (replacement sel.)", "runs (memory-load sort)",
         "mean run / M"],
        rows,
        paper_claims=[
            "longer runs decrease R, allowing a larger block size (§VII)",
            "expected run length 2M for random input (Knuth 5.4.1)",
        ],
        notes=["sorted input collapses to one run; reverse-sorted to runs of M"],
    )


def _nearly_sorted(rng, n):
    keys = np.arange(n)
    idx = rng.integers(0, n - 1, n // 100)
    keys[idx], keys[idx + 1] = keys[idx + 1].copy(), keys[idx].copy()
    return keys


def pipeline_ablation(quick: bool = True) -> FigureResult:
    """Pipelined vs batch sorting: I/O passes saved (§VII).

    With a generator source and a sorted-order sink, the input and output
    passes disappear: ~2N bytes of I/O instead of ~4N.
    """
    from ..core.pipeline import ArraySource, CollectingSink, PipelinedMergeSort
    from ..em.context import ExternalMemory

    n_nodes = _QUICK_P if quick else 8
    config = paper_config(
        data_per_node_bytes=12 * GiB, memory_bytes=4 * GiB, downscale=24
    )
    rows = []

    # Batch mode: the standard CanonicalMergeSort.
    record = run_canonical(n_nodes, "random", config=config)
    n_sim = record.simulated_bytes
    rows.append(
        {
            "mode": "batch (disk to disk)",
            "io passes": record.stats.total_io_bytes / n_sim / 2,
            "total [s]": record.total_seconds,
        }
    )

    # Pipelined: generator source, sorted-order sink.
    cluster = Cluster(n_nodes)
    em = ExternalMemory(cluster, config.block_bytes, config.block_elems)
    rng = np.random.default_rng(config.seed)
    inputs = [
        rng.integers(0, 2 ** 60, config.keys_per_node, dtype=np.uint64)
        for _ in range(n_nodes)
    ]
    sources = [ArraySource(k, config.block_elems) for k in inputs]
    sinks = [CollectingSink() for _ in range(n_nodes)]
    result = PipelinedMergeSort(cluster, config).sort(em, sources, sinks)
    got = np.concatenate([s.keys for s in sinks])
    want = np.sort(np.concatenate(inputs))
    if not np.array_equal(got, want):
        raise AssertionError("pipelined sort produced incorrect output")
    rows.append(
        {
            "mode": "pipelined (source to sink)",
            "io passes": result.stats.total_io_bytes / n_sim / 2,
            "total [s]": result.stats.scaled_total_time,
        }
    )
    return FigureResult(
        "ablation_pipeline",
        "Ablation: pipelined sorting (§VII) vs batch sorting",
        ["mode", "io passes", "total [s]"],
        rows,
        paper_claims=[
            "pipelined run formation obtains data from a generator; output "
            "feeds a postprocessor in sorted order (§VII)",
        ],
        notes=["the pipeline saves the input read and the output write pass"],
    )


def straggler_ablation(quick: bool = True) -> FigureResult:
    """Stragglers under fault injection (the §VII fault-tolerance question).

    Degrading one disk of one node slows the whole machine to the
    straggler's pace — the cost that replication (Google's factor-3 in
    disks) buys its way out of.
    """
    from ..cluster.faults import inject_disk_slowdown
    from ..workloads.generators import generate_input, input_keys
    from ..workloads.validation import validate_output
    from ..core.canonical import CanonicalMergeSort

    n_nodes = _QUICK_P if quick else 8
    config = paper_config(
        data_per_node_bytes=12 * GiB, memory_bytes=4 * GiB, downscale=24
    )
    rows = []
    for label, factor in [("healthy", None), ("one disk 2x slower", 2.0),
                          ("one disk 4x slower", 4.0),
                          ("one disk 8x slower", 8.0)]:
        cluster = Cluster(n_nodes)
        em, inputs = generate_input(cluster, config, "random")
        before = input_keys(em, inputs)
        if factor is not None:
            inject_disk_slowdown(cluster, node=0, disk=0, factor=factor)
        result = CanonicalMergeSort(cluster, config).sort(em, inputs)
        validate_output(before, result.output_keys(em)).raise_if_failed()
        walls = [result.stats.per_node[r]["merge"].wall for r in range(n_nodes)]
        rows.append(
            {
                "fault": label,
                "total [s]": result.stats.scaled_total_time,
                "merge imbalance (max/mean)": max(walls) / (sum(walls) / len(walls)),
            }
        )
    base = rows[0]["total [s]"]
    for row in rows:
        row["slowdown"] = row["total [s]"] / base
    return FigureResult(
        "ablation_faults",
        "Fault injection: one degraded disk gates the machine (§VII)",
        ["fault", "total [s]", "slowdown", "merge imbalance (max/mean)"],
        rows,
        paper_claims=[
            "when scaling to very large machines, fault tolerance will play "
            "a bigger role (§VII, open question)",
        ],
        notes=[
            "correctness is unaffected (validated); only the clock suffers, "
            "and barriers make the slowest PE's disk everyone's problem",
        ],
    )


def hierarchy_ablation(quick: bool = True) -> FigureResult:
    """Hierarchical parallelism (§IV-E): nodes-as-PEs vs cores-as-PEs.

    "Taking each processor core as a PE would lead to a larger number P,
    negatively influencing some of the stated properties of the
    algorithm."  Same total hardware both ways: N nodes of 8 cores and 4
    disks, either as N communicating PEs exploiting the cores/disks
    internally, or as 4N quarter-node PEs that all communicate.
    """
    base_nodes = 2 if quick else 8
    data_per_pe = 12 * GiB
    mem_per_pe = 4 * GiB

    def run(n_pes, spec, label):
        config = paper_config(
            data_per_node_bytes=data_per_pe * base_nodes / n_pes,
            memory_bytes=mem_per_pe * base_nodes / n_pes,
            downscale=24,
        )
        record = run_canonical(n_pes, "worstcase", config=config, spec=spec)
        stats = record.stats
        return {
            "configuration": label,
            "#PEs": n_pes,
            "all-to-all volume / N": record.alltoall_volume_ratio,
            "selection block reads": stats.counter_total("selection_block_reads"),
            "total [s]": record.total_seconds,
        }

    from ..cluster.machine import PAPER_MACHINE

    rows = [
        run(
            base_nodes,
            PAPER_MACHINE,
            f"{base_nodes} nodes as PEs (8 cores, 4 disks each)",
        ),
        run(
            4 * base_nodes,
            PAPER_MACHINE.with_overrides(cores_per_node=2, disks_per_node=1),
            f"{4 * base_nodes} quarter-node PEs (2 cores, 1 disk each)",
        ),
    ]
    return FigureResult(
        "ablation_hierarchy",
        "Hierarchical parallelism (§IV-E): one PE per node vs per core group",
        ["configuration", "#PEs", "all-to-all volume / N",
         "selection block reads", "total [s]"],
        rows,
        paper_claims=[
            "a PE is defined with respect to communication; cores and disks "
            "inside a node are exploited as hierarchical parallelism (§IV-E)",
            "core-as-PE increases P, hurting the m >> P·B·log P condition and "
            "the per-PE overheads",
        ],
        notes=[
            "same total hardware: larger P raises redistribution overhead "
            "and selection traffic",
        ],
    )
