"""Capacity planner: feasibility and time estimates from the paper's model.

A downstream-user tool the paper's analysis (§IV-D) makes possible: given
a machine and a sorting job, check every constraint CanonicalMergeSort
needs and estimate the per-phase times — before buying the cluster.

Checks (all from §IV-D, with the paper's wording):

* **two-pass limit** — N = O(M²/(P·B)): each PE must hold one buffer
  block per run in the merge phase (R ≤ m/B);
* **redistribution bound** — m ≫ P·B·log₂P: "each PE must be able to
  store some number of blocks for each other PE", else randomization
  cannot keep the all-to-all small and the sort degrades toward three
  passes;
* **all-to-all buffers** — "each local memory must be able to hold a
  constant number of blocks for each other PE";
* **selection** — with sampling and caching, negligible by construction.

Estimates come from a downscaled *measurement run* of the real
simulator — the planner does not re-derive times analytically, it runs
the actual machinery small and rescales (DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster.machine import GiB, MachineSpec, MiB, PAPER_MACHINE
from ..core.config import SortConfig
from .harness import run_canonical

__all__ = ["SortPlan", "plan_sort"]


@dataclass
class SortPlan:
    """Feasibility verdict and time estimate for one sorting job."""

    total_bytes: float
    n_nodes: int
    block_bytes: float
    memory_bytes: float
    n_runs: int
    feasible: bool
    #: Human-readable constraint findings ("ok: ..." / "violated: ...").
    findings: List[str] = field(default_factory=list)
    #: Estimated paper-scale seconds per phase (None when infeasible).
    phase_seconds: Optional[dict] = None
    total_seconds: Optional[float] = None

    @property
    def throughput_gb_per_min(self) -> Optional[float]:
        if not self.total_seconds:
            return None
        return (self.total_bytes / 1e9) / (self.total_seconds / 60.0)

    def render(self) -> str:
        lines = [
            f"sort {self.total_bytes / 1e12:.2f} TB on {self.n_nodes} nodes "
            f"(B = {self.block_bytes / MiB:.0f} MiB, "
            f"run memory {self.memory_bytes / GiB:.1f} GiB/node, "
            f"R = {self.n_runs} runs)",
            f"feasible: {'yes' if self.feasible else 'NO'}",
        ]
        lines += [f"  - {finding}" for finding in self.findings]
        if self.phase_seconds:
            lines.append("estimated times (measurement run, rescaled):")
            for phase, seconds in self.phase_seconds.items():
                lines.append(f"  {phase:<14} {seconds:10,.0f} s")
            lines.append(f"  {'total':<14} {self.total_seconds:10,.0f} s "
                         f"({self.throughput_gb_per_min:,.0f} GB/min)")
        return "\n".join(lines)


def plan_sort(
    total_bytes: float,
    n_nodes: int,
    spec: MachineSpec = PAPER_MACHINE,
    block_bytes: float = 8 * MiB,
    memory_bytes: Optional[float] = None,
    workload: str = "random",
    measure: bool = True,
    sim_blocks_per_piece: int = 16,
) -> SortPlan:
    """Check §IV-D's constraints and estimate times for a sorting job.

    ``measure=True`` runs a downscaled simulation (about a second of real
    time) to produce phase-time estimates; ``measure=False`` only checks
    feasibility.
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    mem = memory_bytes if memory_bytes is not None else spec.usable_ram
    data_per_node = total_bytes / n_nodes
    n_runs = max(1, math.ceil(data_per_node / mem))
    blocks_per_memory = mem / block_bytes

    findings: List[str] = []
    feasible = True

    # Two-pass limit: R buffer blocks must fit in memory (N <= M^2/(P B)).
    if n_runs <= 0.5 * blocks_per_memory:
        findings.append(
            f"ok: two-pass limit — R = {n_runs} runs need {n_runs} buffer "
            f"blocks of the {blocks_per_memory:.0f} per node"
        )
    elif n_runs <= blocks_per_memory:
        findings.append(
            f"marginal: R = {n_runs} runs nearly exhaust the "
            f"{blocks_per_memory:.0f} memory blocks per node — shrink B or "
            "add memory"
        )
    else:
        feasible = False
        findings.append(
            f"violated: two-pass limit N = O(M^2/(P B)) — R = {n_runs} runs "
            f"exceed the {blocks_per_memory:.0f} memory blocks per node"
        )

    # Redistribution bound: m >> P B log2 P  (Appendix C).
    log_p = max(1.0, math.log2(max(2, n_nodes)))
    needed = n_nodes * block_bytes * log_p
    ratio = mem / needed
    if ratio >= 8:
        findings.append(
            f"ok: redistribution bound m >> P·B·log P "
            f"(headroom {ratio:.0f}x)"
        )
    elif ratio >= 1:
        findings.append(
            f"marginal: m / (P·B·log P) = {ratio:.1f} — worst-case inputs "
            "will drift toward a third pass (paper §IV-D)"
        )
    else:
        findings.append(
            f"violated (soft): m / (P·B·log P) = {ratio:.2f} — expect "
            "three-pass behaviour on adversarial inputs; average-case "
            "inputs still sort in two passes"
        )

    # All-to-all buffers: a block per destination must fit.
    if mem >= 2 * n_nodes * block_bytes:
        findings.append("ok: all-to-all can buffer one block per destination")
    else:
        findings.append(
            "marginal: all-to-all buffers exceed memory at full fan-out; "
            "randomization keeps the active-destination count P' small"
        )

    plan = SortPlan(
        total_bytes=total_bytes,
        n_nodes=n_nodes,
        block_bytes=block_bytes,
        memory_bytes=mem,
        n_runs=n_runs,
        feasible=feasible,
        findings=findings,
    )
    if not (feasible and measure):
        return plan

    # The measurement run must keep at least R (plus slack) simulated
    # blocks per memory piece, or the downscaled config would itself
    # violate the two-pass limit.
    sim_piece = max(sim_blocks_per_piece, 2 * n_runs)
    downscale = max(1.0, mem / (sim_piece * block_bytes))
    config = SortConfig(
        data_per_node_bytes=data_per_node,
        memory_bytes=mem,
        block_bytes=block_bytes,
        downscale=downscale,
    )
    record = run_canonical(
        min(n_nodes, 16),  # a slice suffices: per-node load is identical
        workload,
        config=config,
        spec=spec if n_nodes <= 16 else _congested(spec, n_nodes),
    )
    plan.phase_seconds = {
        phase: record.phase_seconds(phase)
        for phase in record.stats.phases
    }
    plan.total_seconds = record.total_seconds
    return plan


def _congested(spec: MachineSpec, n_nodes: int) -> MachineSpec:
    """Pin the fabric at the full machine's congestion level."""
    bw = spec.net_bandwidth(n_nodes)
    return spec.with_overrides(
        net_p2p_bandwidth=bw, net_min_bandwidth=bw, net_congestion=0.0
    )
