"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro.bench fig2            # quick sweep (P = 1..8)
    python -m repro.bench fig5 --full     # the paper's full P = 1..64
    python -m repro.bench all             # every experiment, quick mode
    demsort-bench graysort                # installed console script
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="demsort-bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated cluster.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (figN, SortBenchmark category, or ablation)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's full scale (P up to 64 / 195 nodes); slower",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="directory for the rendered reports (default: bench_results/)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](quick=not args.full)
        elapsed = time.time() - started
        print(result.render())
        path = write_report(result, out_dir=args.out_dir)
        print(f"\n[{name}: {elapsed:.1f}s wall; report written to {path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
