"""Splitter estimation for the baseline sorters."""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import SortConfig
from ..core.stats import SortStats
from ..em.context import ExternalMemory

__all__ = ["uniform_splitters", "sampled_splitters"]

#: Matches the key domain of the workload generators.
_KEY_HIGH = 2 ** 63


def uniform_splitters(n_nodes: int) -> np.ndarray:
    """Key-space-equidistant splitters (the Indy uniform assumption)."""
    return np.asarray(
        [i * _KEY_HIGH // n_nodes for i in range(1, n_nodes)], dtype=np.uint64
    )


def sampled_splitters(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    input_blocks,
    tag: str,
    oversample: int = 16,
) -> Generator:
    """Splitters from a full sampling scan (extra pass over the data).

    Every node reads its entire input once (this is the "additional scan"
    cost the paper attributes to the preprocessing repair of NOW-Sort),
    samples ``oversample·P`` keys, and the gathered sample's quantiles
    become the splitters.  Approximate by construction: a sample cannot
    guarantee exact partitioning, only bounded imbalance.
    """
    comm = cluster.comm
    store = em.store(rank)
    n_nodes = cluster.n_nodes
    max_out = config.resolved_write_buffers(cluster.spec)

    samples = []
    inflight = []
    idx = 0
    rng = np.random.default_rng((config.seed, 0xBA5E, rank))
    want = max(1, oversample * n_nodes)
    while idx < len(input_blocks) or inflight:
        while idx < len(input_blocks) and len(inflight) < max_out:
            inflight.append(store.read(input_blocks[idx], tag=tag))
            idx += 1
        keys = yield inflight.pop(0)
        take = max(1, len(keys) * want // max(1, config.keys_per_node))
        samples.append(rng.choice(keys, size=min(take, len(keys)), replace=False))
    local_sample = np.concatenate(samples) if samples else np.empty(0, np.uint64)

    gathered = yield comm.allgather(
        rank, local_sample, nbytes=config.keys_to_bytes(len(local_sample))
    )
    pool = np.sort(np.concatenate([g for g in gathered if len(g)]))
    if len(pool) == 0:
        return uniform_splitters(n_nodes)
    picks = [
        pool[min(len(pool) - 1, (i * len(pool)) // n_nodes)]
        for i in range(1, n_nodes)
    ]
    stats.add_counter(rank, "baseline_sample_keys", len(local_sample))
    return np.asarray(picks, dtype=np.uint64)
