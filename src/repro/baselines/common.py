"""Shared machinery for the splitter-based baseline sorters.

Both NOW-Sort and the external sample sort follow the same skeleton the
paper contrasts CanonicalMergeSort against: pick splitters up front,
*distribute* elements to their target PE in one pass, then sort locally.
The difference — and the point of the comparison — is where the splitters
come from and what happens when they are wrong: with skewed inputs a
single PE can receive nearly all data and the algorithms degrade toward a
sequential sort, which exact multiway selection rules out by
construction.

Two helpers live here:

* :func:`distribute_by_splitters` — the wave-based one-pass partition and
  exchange: each node reads a memory-load of input, sorts it, cuts it at
  the splitters, ships the pieces; receivers merge a wave into one run
  when it fits in memory and otherwise spill per-source runs (the
  degradation path);
* :func:`local_external_merge` — multi-pass R-way merging of the received
  runs, reusing the prediction-sequence merge machinery of the core
  algorithm, with the fan-in bounded by the per-node memory in blocks.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import SortConfig
from ..core.merge_phase import merge_phase
from ..core.stats import SortStats
from ..em.context import ExternalMemory
from ..em.file import LocalRunPiece
from ..em.writebuffer import SegmentBlock, StreamBlockWriter
from ..records.arrays import merge_sorted_arrays

__all__ = ["distribute_by_splitters", "local_external_merge"]


def distribute_by_splitters(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    input_blocks,
    splitters: np.ndarray,
    tag: str,
) -> Generator:
    """One-pass read + partition + all-to-all + run writing.

    ``splitters`` are the P−1 bucket boundaries (keys); bucket ``i`` is
    ``[splitters[i-1], splitters[i])`` and lands on PE ``i``.  Returns the
    list of sorted runs (each a list of :class:`SegmentBlock`) this node
    received, plus the total number of keys it now owns.
    """
    node = cluster.nodes[rank]
    comm = cluster.comm
    store = em.store(rank)
    be = config.block_elems
    bpk = config.bytes_per_key
    piece_keys = config.piece_keys(cluster.spec)

    waves = [
        input_blocks[i : i + config.piece_blocks(cluster.spec)]
        for i in range(0, len(input_blocks), config.piece_blocks(cluster.spec))
    ]
    n_waves = yield comm.allreduce(rank, len(waves), max)

    runs: List[List[SegmentBlock]] = []
    received_keys = 0
    outstanding: List = []
    max_out = config.resolved_write_buffers(cluster.spec)

    for w in range(n_waves):
        wave = waves[w] if w < len(waves) else []
        # Read the wave (bounded read-ahead), freeing input blocks.
        arrays = []
        inflight = []
        idx = 0
        while idx < len(wave) or inflight:
            while idx < len(wave) and len(inflight) < max_out:
                inflight.append((wave[idx], store.read(wave[idx], tag=tag)))
                idx += 1
            bid, ev = inflight.pop(0)
            arrays.append((yield ev))
            store.free(bid)
        keys = np.concatenate(arrays) if arrays else np.empty(0, np.uint64)

        # Sort the wave and cut it at the splitters.
        keys = np.sort(keys)
        yield node.sort_compute(
            config.keys_to_elements(len(keys)), config.element.elem_bytes, tag=tag
        )
        bounds = np.searchsorted(keys, splitters, side="left")
        cuts = [0] + [int(b) for b in bounds] + [len(keys)]
        send = [keys[cuts[d] : cuts[d + 1]] for d in range(cluster.n_nodes)]
        send_bytes = [
            len(send[d]) * bpk if d != rank else 0.0 for d in range(cluster.n_nodes)
        ]
        recv, _rb = yield comm.alltoallv(rank, send, send_bytes)

        # Receive: merge the wave into one run when it fits in memory,
        # otherwise spill one run per source (skew degradation path).
        pieces = [p for p in recv if len(p)]
        wave_total = sum(len(p) for p in pieces)
        received_keys += wave_total
        if wave_total == 0:
            continue
        groups: List[np.ndarray]
        if wave_total <= piece_keys:
            merged = merge_sorted_arrays(pieces)
            yield node.merge_compute(
                config.keys_to_elements(wave_total),
                arity=max(2, len(pieces)),
                elem_bytes=config.element.elem_bytes,
                tag=tag,
            )
            groups = [merged]
        else:
            stats.add_counter(rank, "baseline_spilled_waves")
            groups = pieces
        for grp in groups:
            writer = StreamBlockWriter(store, tag, outstanding, max_out)
            yield from writer.add(grp)
            yield from writer.flush()
            runs.append(writer.blocks)
    for ev in outstanding:
        yield ev
    stats.add_counter(rank, "baseline_received_keys", received_keys)
    return runs, received_keys


def local_external_merge(
    rank: int,
    cluster: Cluster,
    em: ExternalMemory,
    config: SortConfig,
    stats: SortStats,
    runs: List[List[SegmentBlock]],
) -> Generator:
    """Multi-pass local merging of sorted runs into one sorted piece.

    Groups of at most ``piece_blocks`` runs (one buffer block per run)
    merge per pass via the prediction-sequence merge engine; extra passes
    cost extra I/O — the degradation the skewed experiments measure.
    """
    fan_in = max(2, config.piece_blocks(cluster.spec))
    passes = 0
    while len(runs) > 1:
        groups = [runs[i : i + fan_in] for i in range(0, len(runs), fan_in)]
        merged_runs: List[List[SegmentBlock]] = []
        for group in groups:
            piece = yield from merge_phase(rank, cluster, em, config, stats, group)
            merged_runs.append(
                [
                    SegmentBlock(bid, cnt, int(fk))
                    for bid, cnt, fk in zip(piece.blocks, piece.counts, piece.first_keys)
                ]
            )
        runs = merged_runs
        passes += 1
    stats.add_counter(rank, "baseline_merge_passes", passes)
    if not runs:
        return LocalRunPiece(rank, [], [], np.empty(0, np.uint64), np.empty(0, np.uint64), 1)
    seg = runs[0]
    return LocalRunPiece(
        node=rank,
        blocks=[b.bid for b in seg],
        counts=[b.count for b in seg],
        first_keys=np.asarray([b.first_key for b in seg], dtype=np.uint64),
        sample_keys=np.empty(0, np.uint64),
        sample_every=1,
    )
