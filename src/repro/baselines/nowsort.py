"""NOW-Sort-style baseline (Arpaci-Dusseau et al., SIGMOD 1997).

The most successful prior distributed external sort the paper discusses:
elements are bucketed by *fixed splitters* and shipped to their bucket's
PE in a single pass, then each PE sorts its bucket locally — also a
two-pass algorithm, sorting up to M²/(P·B) elements.

Its weakness is the paper's motivation for exact multiway selection:
"it only works efficiently for random inputs.  In the worst case, it
deteriorates to a sequential algorithm since all the data ends up in a
single processor."  Splitter modes:

* ``uniform`` — key-space-equidistant splitters (the Indy assumption);
  perfect for uniform random data, catastrophic for skew;
* ``sampled`` — splitters from a prior sampling scan (the preprocessing
  repair of Manku et al. the paper cites), costing an extra read pass and
  still giving only approximate partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import SortConfig
from ..core.stats import PhaseTimer, SortStats
from ..em.context import ExternalMemory
from ..em.file import LocalRunPiece
from .common import distribute_by_splitters, local_external_merge
from .splitters import sampled_splitters, uniform_splitters

__all__ = ["NowSort", "NowSortResult"]


@dataclass
class NowSortResult:
    """Outcome of a NOW-Sort run (output is *not* balance-guaranteed)."""

    config: SortConfig
    n_nodes: int
    stats: SortStats
    output: List[LocalRunPiece]
    #: Keys each PE ended up owning — the imbalance the paper warns about.
    bucket_sizes: List[int]

    @property
    def imbalance(self) -> float:
        """max bucket / ideal bucket; 1.0 is perfect, P is sequential."""
        total = sum(self.bucket_sizes)
        if total == 0:
            return 1.0
        ideal = total / self.n_nodes
        return max(self.bucket_sizes) / ideal

    def output_keys(self, em: ExternalMemory) -> List[np.ndarray]:
        out = []
        for rank, piece in enumerate(self.output):
            store = em.store(rank)
            if piece.blocks:
                out.append(np.concatenate([store.peek(b) for b in piece.blocks]))
            else:
                out.append(np.empty(0, dtype=np.uint64))
        return out


class NowSort:
    """Splitter-bucket distributed external sort (NOW-Sort baseline)."""

    name = "NowSort"

    def __init__(
        self,
        cluster: Cluster,
        config: SortConfig,
        splitter_mode: str = "uniform",
    ):
        if splitter_mode not in ("uniform", "sampled"):
            raise ValueError(f"unknown splitter mode {splitter_mode!r}")
        config.validate(cluster.spec, cluster.n_nodes)
        self.cluster = cluster
        self.config = config
        self.splitter_mode = splitter_mode

    def sort(self, em: ExternalMemory, inputs) -> NowSortResult:
        """Sort the pre-placed input blocks; buckets stay where they land."""
        cluster = self.cluster
        config = self.config
        stats = SortStats(config, cluster.n_nodes)
        stats.phases = (
            ["sample", "distribute", "merge"]
            if self.splitter_mode == "sampled"
            else ["distribute", "merge"]
        )
        bucket_sizes = [0] * cluster.n_nodes

        def pe_main(rank: int, cluster: Cluster):
            comm = cluster.comm
            yield comm.barrier(rank)

            if self.splitter_mode == "sampled":
                timer = PhaseTimer(stats, rank, "sample", cluster.sim)
                splitters = yield from sampled_splitters(
                    rank, cluster, em, config, stats, inputs[rank], tag="sample"
                )
                timer.stop()
                yield comm.barrier(rank)
            else:
                splitters = uniform_splitters(cluster.n_nodes)

            timer = PhaseTimer(stats, rank, "distribute", cluster.sim)
            runs, received = yield from distribute_by_splitters(
                rank, cluster, em, config, stats, inputs[rank], splitters, "distribute"
            )
            timer.stop()
            bucket_sizes[rank] = received
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "merge", cluster.sim)
            piece = yield from local_external_merge(
                rank, cluster, em, config, stats, runs
            )
            timer.stop()
            return piece

        started = cluster.sim.now
        output = cluster.run_spmd(pe_main)
        stats.total_time = cluster.sim.now - started
        stats.collect_io(cluster)
        return NowSortResult(
            config=config,
            n_nodes=cluster.n_nodes,
            stats=stats,
            output=output,
            bucket_sizes=bucket_sizes,
        )
