"""External sample sort baseline (the BSP-emulation flavour, paper §II).

The paper cites Dehne et al.'s general emulation technique applied to
sample sort, yielding an algorithm that "needs five passes over the data
for sorting O(M²/(PB)) elements".  This implementation is the natural
concrete version of that scheme:

1. **sample pass** — scan the input once to draw an oversampled global
   sample and derive the P−1 splitters (read N);
2. **distribute pass** — read the input again, bucket by splitter, ship
   buckets, write arriving runs (read N + write N);
3. **local sort pass** — external multiway merge of each PE's runs
   (read N + write N).

Total ≈ 5·N bytes of I/O versus CanonicalMergeSort's 4·N with exact
output balance; bucket sizes here are only *probabilistically* balanced.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import SortConfig
from ..core.stats import PhaseTimer, SortStats
from ..em.context import ExternalMemory
from .common import distribute_by_splitters, local_external_merge
from .nowsort import NowSortResult
from .splitters import sampled_splitters

__all__ = ["ExternalSampleSort"]


class ExternalSampleSort:
    """Three-phase (≈five-pass) external sample sort baseline."""

    name = "ExternalSampleSort"

    def __init__(self, cluster: Cluster, config: SortConfig, oversample: int = 16):
        config.validate(cluster.spec, cluster.n_nodes)
        self.cluster = cluster
        self.config = config
        self.oversample = oversample

    def sort(self, em: ExternalMemory, inputs) -> NowSortResult:
        """Sort the pre-placed input; same result contract as NOW-Sort."""
        cluster = self.cluster
        config = self.config
        stats = SortStats(config, cluster.n_nodes)
        stats.phases = ["sample", "distribute", "merge"]
        bucket_sizes = [0] * cluster.n_nodes

        def pe_main(rank: int, cluster: Cluster):
            comm = cluster.comm
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "sample", cluster.sim)
            splitters = yield from sampled_splitters(
                rank,
                cluster,
                em,
                config,
                stats,
                inputs[rank],
                tag="sample",
                oversample=self.oversample,
            )
            timer.stop()
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "distribute", cluster.sim)
            runs, received = yield from distribute_by_splitters(
                rank, cluster, em, config, stats, inputs[rank], splitters, "distribute"
            )
            timer.stop()
            bucket_sizes[rank] = received
            yield comm.barrier(rank)

            timer = PhaseTimer(stats, rank, "merge", cluster.sim)
            piece = yield from local_external_merge(
                rank, cluster, em, config, stats, runs
            )
            timer.stop()
            return piece

        started = cluster.sim.now
        output = cluster.run_spmd(pe_main)
        stats.total_time = cluster.sim.now - started
        stats.collect_io(cluster)
        return NowSortResult(
            config=config,
            n_nodes=cluster.n_nodes,
            stats=stats,
            output=output,
            bucket_sizes=bucket_sizes,
        )
