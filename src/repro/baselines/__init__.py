"""Baseline distributed external sorts the paper compares against."""

from .nowsort import NowSort, NowSortResult
from .samplesort import ExternalSampleSort
from .splitters import sampled_splitters, uniform_splitters

__all__ = [
    "NowSort",
    "NowSortResult",
    "ExternalSampleSort",
    "sampled_splitters",
    "uniform_splitters",
]
