"""Resource-utilization tracing.

The paper's Figure 3 discussion turns on *how busy the disks are* —
"average I/O bandwidth per disk is about 50 MiB/s, which is more than 2/3
of the maximum".  This module records per-server busy intervals and turns
them into time-bucketed utilization profiles, so a run can answer exactly
that question: what fraction of the wall clock was each disk transferring,
per phase and over time.

Tracing is opt-in (zero overhead otherwise): attach a :class:`Tracer` to
a cluster *before* running, then query it afterwards::

    tracer = Tracer.attach(cluster)
    result = CanonicalMergeSort(cluster, config).sort(em, inputs)
    print(tracer.utilization_table(buckets=12))
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

__all__ = ["Tracer"]


class Tracer:
    """Records (start, end, tag) busy intervals for every disk server."""

    def __init__(self) -> None:
        #: disk name -> list of (start, end, tag) service intervals.
        self.intervals: Dict[str, List[Tuple[float, float, Optional[str]]]] = (
            defaultdict(list)
        )
        self._names: List[str] = []
        #: Servers this tracer already instruments (attach idempotency).
        self._attached_servers: set = set()

    # -- attachment -----------------------------------------------------------

    @classmethod
    def attach(cls, cluster) -> "Tracer":
        """Instrument every disk of ``cluster``; returns the tracer.

        Hooks each disk server's ``_finish`` (the single point where a
        request's start/duration are final) — requests already in flight
        when attaching are captured too.  ``_finish`` is wrapped at most
        once per server regardless of how many tracers attach (or how
        often): the wrapper dispatches to a server-level hook list, and a
        tracer that is already attached to a server never registers a
        second hook there.
        """
        tracer = cls()
        tracer.attach_to(cluster)
        return tracer

    def attach_to(self, cluster) -> "Tracer":
        """Attach *this* tracer to ``cluster`` (idempotent); returns self."""
        for node in cluster.nodes:
            for disk in node.disks:
                self._instrument(disk.server, disk.name)
        return self

    def _instrument(self, server, name: str) -> None:
        if id(server) in self._attached_servers:
            return
        self._attached_servers.add(id(server))
        hooks = getattr(server, "_tracer_hooks", None)
        if hooks is None:
            hooks = []
            server._tracer_hooks = hooks
            original = server._finish

            def finish(req):
                original(req)
                for hook in server._tracer_hooks:
                    hook(req)

            server._finish = finish

        self._names.append(name)
        intervals = self.intervals[name]

        def record(req):
            intervals.append((req.started_at, req.finished_at, req.tag))

        hooks.append(record)

    # -- queries ------------------------------------------------------------------

    @property
    def disk_names(self) -> List[str]:
        return list(self._names)

    def busy_fraction(
        self,
        name: str,
        t_start: float = 0.0,
        t_end: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> float:
        """Fraction of [t_start, t_end) the disk spent in service."""
        intervals = self.intervals.get(name, [])
        if t_end is None:
            t_end = max((e for _s, e, _t in intervals), default=0.0)
        span = t_end - t_start
        if span <= 0:
            return 0.0
        busy = 0.0
        for s, e, t in intervals:
            if tag is not None and t != tag:
                continue
            busy += max(0.0, min(e, t_end) - max(s, t_start))
        return busy / span

    def utilization_profile(
        self, name: str, buckets: int = 10, t_end: Optional[float] = None
    ) -> List[float]:
        """Busy fraction of each of ``buckets`` equal time slices."""
        intervals = self.intervals.get(name, [])
        if t_end is None:
            t_end = max((e for _s, e, _t in intervals), default=0.0)
        if t_end <= 0:
            return [0.0] * buckets
        width = t_end / buckets
        return [
            self.busy_fraction(name, i * width, (i + 1) * width)
            for i in range(buckets)
        ]

    def utilization_table(self, buckets: int = 12, t_end: Optional[float] = None) -> str:
        """ASCII heat-strip of per-disk utilization over time.

        One row per disk; each cell maps the slice's busy fraction to
        ``' .:-=+*#%@'`` (idle → saturated).
        """
        ramp = " .:-=+*#%@"
        if t_end is None:
            t_end = max(
                (e for iv in self.intervals.values() for _s, e, _t in iv),
                default=0.0,
            )
        lines = [f"disk utilization over {t_end:.3f} simulated s"]
        for name in self._names:
            profile = self.utilization_profile(name, buckets, t_end)
            cells = "".join(
                ramp[min(len(ramp) - 1, int(f * (len(ramp) - 1) + 0.5))]
                for f in profile
            )
            avg = self.busy_fraction(name, 0.0, t_end)
            lines.append(f"{name:>10} |{cells}| {avg * 100:5.1f}%")
        return "\n".join(lines)

    def mean_utilization(self, t_end: Optional[float] = None) -> float:
        """Machine-wide average disk busy fraction."""
        if not self._names:
            return 0.0
        values = [self.busy_fraction(n, 0.0, t_end) for n in self._names]
        return sum(values) / len(values)
