"""Shared resources for simulation processes.

Three primitives cover everything the sorting stack needs:

* :class:`Server` — a FIFO queueing station with fixed capacity and
  per-request service times (disks and network uplinks are Servers),
* :class:`Pool` — a counting semaphore with FIFO waiters (buffer-block
  pools, memory budgets),
* :class:`Rendezvous` — a barrier where every party contributes a payload
  and a resolver assigns each party an individual release delay and return
  value (the building block for simulated MPI collectives).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Union

from .engine import Event, SimulationError, Simulator

__all__ = ["Server", "ServiceRequest", "Pool", "Rendezvous"]


class ServiceRequest(Event):
    """One unit of work submitted to a :class:`Server`.

    The request is an event that fires when service completes.  Service
    duration may be given as a constant or as a callable evaluated when the
    request *starts* service (so e.g. a disk can charge a seek penalty based
    on the head position at that moment).
    """

    __slots__ = (
        "server",
        "service",
        "tag",
        "result",
        "submitted_at",
        "started_at",
        "finished_at",
        "duration",
    )

    def __init__(
        self,
        server: "Server",
        service: Union[float, Callable[["ServiceRequest"], float]],
        tag: Optional[str],
        result: Any,
    ):
        super().__init__(server.sim)
        self.server = server
        self.service = service
        self.tag = tag
        self.result = result
        self.submitted_at = server.sim.now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.duration: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Time the request spent queued before service began."""
        if self.started_at is None:
            raise SimulationError("request has not started service")
        return self.started_at - self.submitted_at


class Server:
    """A FIFO multi-server queueing station.

    ``capacity`` requests are serviced concurrently; excess requests queue
    in submission order.  Busy time is accounted in total and per ``tag``
    (tags let the sorting phases attribute disk time to themselves, which
    is what Figure 3 of the paper plots).
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"server capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: deque = deque()
        self._active = 0
        self.busy_time = 0.0
        self.busy_by_tag: Dict[str, float] = {}
        self.n_served = 0
        self.total_wait = 0.0

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting (not in service)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        """Number of requests currently being serviced."""
        return self._active

    def request(
        self,
        service: Union[float, Callable[[ServiceRequest], float]],
        tag: Optional[str] = None,
        result: Any = None,
    ) -> ServiceRequest:
        """Submit work; the returned event fires with ``result`` when done."""
        req = ServiceRequest(self, service, tag, result)
        if self._active < self.capacity:
            self._start(req)
        else:
            self._queue.append(req)
        return req

    def _start(self, req: ServiceRequest) -> None:
        self._active += 1
        req.started_at = self.sim.now
        self.total_wait += req.wait_time
        duration = req.service(req) if callable(req.service) else req.service
        if duration < 0:
            raise ValueError(f"negative service time {duration!r} on {self.name!r}")
        req.duration = duration
        self.sim._schedule_call(lambda: self._finish(req), duration)

    def _finish(self, req: ServiceRequest) -> None:
        self._active -= 1
        req.finished_at = self.sim.now
        self.busy_time += req.duration
        if req.tag is not None:
            self.busy_by_tag[req.tag] = self.busy_by_tag.get(req.tag, 0.0) + req.duration
        self.n_served += 1
        if self._queue:
            self._start(self._queue.popleft())
        req.succeed(req.result)


class Pool:
    """A counting semaphore with FIFO waiters.

    Models bounded buffer pools: ``acquire(n)`` returns an event firing once
    ``n`` units are reserved; ``release(n)`` returns units and wakes waiters
    in FIFO order (a large waiter at the head blocks smaller ones behind it,
    which is the fairness the write-buffer analysis assumes).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 0:
            raise ValueError(f"pool capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.available = capacity
        self.name = name
        self._waiters: deque = deque()

    def acquire(self, n: int = 1) -> Event:
        """Reserve ``n`` units; the event fires when the reservation holds."""
        if n > self.capacity:
            raise SimulationError(
                f"acquire({n}) can never succeed on pool {self.name!r} "
                f"of capacity {self.capacity}"
            )
        ev = Event(self.sim)
        if not self._waiters and self.available >= n:
            self.available -= n
            ev.succeed()
        else:
            self._waiters.append((n, ev))
        return ev

    def try_acquire(self, n: int = 1) -> bool:
        """Non-blocking acquire; True on success."""
        if not self._waiters and self.available >= n:
            self.available -= n
            return True
        return False

    def release(self, n: int = 1) -> None:
        """Return ``n`` units and serve queued acquirers in FIFO order."""
        self.available += n
        if self.available > self.capacity:
            raise SimulationError(
                f"pool {self.name!r} over-released: "
                f"{self.available}/{self.capacity}"
            )
        while self._waiters and self._waiters[0][0] <= self.available:
            need, ev = self._waiters.popleft()
            self.available -= need
            ev.succeed()


class Rendezvous:
    """A payload-carrying barrier for ``parties`` participants.

    Every participant calls :meth:`arrive` with its rank and a payload and
    receives an event.  Once all parties arrived, ``resolve`` is called with
    the payload dict and must return ``{rank: (delay, value)}``; each
    participant's event then fires ``delay`` seconds later with ``value``.

    This models collectives exactly: an all-to-all is a rendezvous whose
    resolver computes per-rank completion times from the volume matrix.
    """

    def __init__(
        self,
        sim: Simulator,
        parties: int,
        resolve: Callable[[Dict[int, Any]], Dict[int, Any]],
        name: str = "",
    ):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self.resolve = resolve
        self.name = name
        self._payloads: Dict[int, Any] = {}
        self._events: Dict[int, Event] = {}
        self._done = False

    def arrive(self, rank: int, payload: Any = None) -> Event:
        """Check in participant ``rank``; returns its personal release event."""
        if self._done:
            raise SimulationError(f"rendezvous {self.name!r} already resolved")
        if rank in self._payloads:
            raise SimulationError(f"rank {rank} arrived twice at {self.name!r}")
        ev = Event(self.sim)
        self._payloads[rank] = payload
        self._events[rank] = ev
        if len(self._payloads) == self.parties:
            self._release()
        return ev

    def _release(self) -> None:
        self._done = True
        try:
            outcome = self.resolve(self._payloads)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            # A failed collective fails in *every* participant rather than
            # deadlocking the others.
            for ev in self._events.values():
                ev.fail(exc)
            return
        missing = set(self._events) - set(outcome)
        if missing:
            raise SimulationError(
                f"rendezvous {self.name!r} resolver omitted ranks {sorted(missing)}"
            )
        for rank, ev in self._events.items():
            delay, value = outcome[rank]
            if delay < 0:
                raise ValueError(f"negative rendezvous delay for rank {rank}")
            ev.triggered = True
            ev._value = value
            self.sim._schedule_event(ev, delay)
