"""Discrete-event simulation kernel (engine + shared resources)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Pool, Rendezvous, Server, ServiceRequest
from .trace import Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Pool",
    "Rendezvous",
    "Server",
    "ServiceRequest",
    "Tracer",
]
