"""Discrete-event simulation engine.

This module provides the minimal process-based simulation kernel that the
whole reproduction runs on.  The design follows the classic coroutine style
(as popularized by SimPy, re-implemented here because the environment is
offline): simulation *processes* are Python generators that ``yield``
:class:`Event` objects and are resumed when those events fire.

The engine is deliberately small and deterministic:

* time is a float (seconds of simulated wall-clock time),
* events scheduled for the same instant fire in FIFO order of scheduling,
* a :class:`Process` is itself an :class:`Event` that fires when the
  underlying generator returns, carrying the generator's return value,
* failures propagate: ``event.fail(exc)`` re-raises ``exc`` inside every
  waiting process.

Typical usage::

    sim = Simulator()

    def worker(sim, n):
        yield sim.timeout(1.0)
        return n * 2

    proc = sim.process(worker(sim, 21))
    sim.run()
    assert proc.value == 42
    assert sim.now == 1.0
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "Interrupt",
]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it; its callbacks run at the current simulation
    instant, in FIFO order.  Processes wait on an event by ``yield``-ing it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        #: True once succeed()/fail() was called.
        self.triggered = False
        #: True once callbacks have run.
        self.processed = False

    @property
    def value(self) -> Any:
        """The value the event fired with (raises if not yet triggered)."""
        if self._value is _PENDING and self._exc is None:
            raise SimulationError("event value accessed before it triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def ok(self) -> bool:
        """Whether the event triggered successfully (vs. failed)."""
        if not self.triggered:
            raise SimulationError("event outcome inspected before it triggered")
        return self._exc is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; ``exc`` is re-raised in waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self.triggered = True
        self._exc = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event fires.

        If the event already fired the callback is scheduled to run at the
        current instant (it never runs synchronously inside this call).
        """
        if self.callbacks is None:
            # Already processed: run the callback at the current instant.
            self.sim._schedule_call(lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        """Run all registered callbacks (kernel-internal)."""
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule_event(self, delay)


class Process(Event):
    """A running simulation coroutine.

    Wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process suspends until that event fires and is then
    resumed with the event's value (or the event's exception is thrown into
    the generator).  When the generator returns, the process — being itself
    an event — fires with the generator's return value.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start executing at the current instant.
        sim._schedule_call(lambda: self._resume(None))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is abandoned (its eventual
        firing will be ignored by this process).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        self._waiting_on = None
        self.sim._schedule_call(
            lambda: self._step(lambda: self.generator.throw(Interrupt(cause))),
        )
        # Detach from the old event so its firing does not double-resume us.
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._on_event)
            except ValueError:
                pass

    # -- kernel internals -------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        self._resume(event)

    def _resume(self, event: Optional[Event]) -> None:
        if event is None:
            self._step(lambda: self.generator.send(None))
        elif event._exc is not None:
            exc = event._exc
            self._step(lambda: self.generator.throw(exc))
        else:
            value = event._value
            self._step(lambda: self.generator.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        while not isinstance(target, Event):
            # Throw into the generator; it may catch and yield again.
            try:
                target = self.generator.throw(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}; "
                        "processes must yield Event instances"
                    )
                )
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._on_event)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"expected Event, got {ev!r}")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._result())
        else:
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _result(self) -> Any:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired; value is their value list."""

    __slots__ = ()

    def _result(self) -> List[Any]:
        return [ev._value for ev in self.events]

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._result())


class AnyOf(_Condition):
    """Fires when the *first* child event fires; value is that event."""

    __slots__ = ()

    def _result(self) -> Any:
        return None

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed(event)


class Simulator:
    """The event loop: a priority queue of (time, seq, thunk) entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = count()
        self._running = False

    # -- event construction helpers ---------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every event in ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- kernel scheduling -------------------------------------------------

    def _schedule_call(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._schedule_call(event._process, delay)

    # -- main loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the simulation time after the run.  Raises any exception
        that escaped a process and was never waited on by another process.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            while self._heap:
                when, _seq, fn = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                if when < self.now - 1e-12:
                    raise SimulationError("time went backwards")
                self.now = when
                fn()
        finally:
            self._running = False
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never finished (deadlock: waiting on an "
                "event nobody triggers)"
            )
        return proc.value
