"""Per-node block store: allocation, reads, writes, remote access.

This is the reproduction's analogue of STXXL's block manager.  Each node
owns one :class:`BlockStore` that

* allocates/frees block slots on the node's disks (round-robin striping
  over the local RAID, with slot reuse so in-place operation is visible
  in the ``peak_blocks`` statistic),
* performs timed block reads/writes against the simulated disks, with
  phase tags for busy-time attribution,
* holds the actual key arrays of live blocks (simulation state — the
  "platters").

Remote block reads (needed by the multiway-selection phase) combine the
owner's disk service time with a network transfer; see :func:`remote_read`.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..cluster.network import Fabric
from ..cluster.node import Node
from ..sim.engine import Event, SimulationError
from .block import BID

__all__ = ["BlockStore", "remote_read"]


class BlockStore:
    """Block allocation and I/O for one node."""

    def __init__(self, node: Node, block_bytes: float, block_elems: int):
        if block_elems < 1:
            raise ValueError(f"block_elems must be >= 1, got {block_elems}")
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.node = node
        self.block_bytes = float(block_bytes)
        self.block_elems = int(block_elems)
        self._data: Dict[BID, np.ndarray] = {}
        self._next_slot: List[int] = [0] * len(node.disks)
        self._free: List[List[int]] = [[] for _ in node.disks]
        self._rr_disk = 0
        self.blocks_in_use = 0
        self.peak_blocks = 0
        self.n_allocated = 0

    # -- allocation ------------------------------------------------------------

    def allocate(self, disk: Optional[int] = None) -> BID:
        """Reserve a block slot (round-robin over local disks by default)."""
        if disk is None:
            disk = self._rr_disk
            self._rr_disk = (self._rr_disk + 1) % len(self.node.disks)
        if not 0 <= disk < len(self.node.disks):
            raise ValueError(f"disk {disk} out of range on node {self.node.node_id}")
        free = self._free[disk]
        slot = free.pop() if free else self._bump(disk)
        bid = BID(self.node.node_id, disk, slot)
        self.blocks_in_use += 1
        self.n_allocated += 1
        self.peak_blocks = max(self.peak_blocks, self.blocks_in_use)
        return bid

    def _bump(self, disk: int) -> int:
        slot = self._next_slot[disk]
        self._next_slot[disk] = slot + 1
        return slot

    def free(self, bid: BID) -> None:
        """Release a block slot (and drop its data)."""
        self._check_local(bid)
        self._data.pop(bid, None)
        self._free[bid.disk].append(bid.slot)
        self.blocks_in_use -= 1
        if self.blocks_in_use < 0:
            raise SimulationError(f"double free of {bid}")

    # -- I/O ---------------------------------------------------------------------

    def write(self, bid: BID, keys: np.ndarray, tag: Optional[str] = None) -> Event:
        """Write ``keys`` (at most ``block_elems`` of them) to ``bid``.

        Returns the disk-completion event.  A full ``block_bytes`` is
        charged even for partially filled blocks — exactly the overhead
        the paper's external all-to-all analysis counts.
        """
        self._check_local(bid)
        if len(keys) > self.block_elems:
            raise ValueError(
                f"{len(keys)} keys exceed block capacity {self.block_elems}"
            )
        self._data[bid] = keys
        disk = self.node.disks[bid.disk]
        return disk.write(bid.offset_bytes(self.block_bytes), self.block_bytes, tag=tag)

    def read(self, bid: BID, tag: Optional[str] = None) -> Event:
        """Read block ``bid``; the event fires with the key array."""
        self._check_local(bid)
        keys = self._data.get(bid)
        if keys is None:
            raise SimulationError(f"read of unwritten block {bid}")
        disk = self.node.disks[bid.disk]
        return disk.read(
            bid.offset_bytes(self.block_bytes), self.block_bytes, tag=tag, result=keys
        )

    def peek(self, bid: BID) -> np.ndarray:
        """Block contents without I/O accounting (validation/debug only)."""
        self._check_local(bid)
        keys = self._data.get(bid)
        if keys is None:
            raise SimulationError(f"peek of unwritten block {bid}")
        return keys

    def store_without_io(self, bid: BID, keys: np.ndarray) -> None:
        """Install block contents with no disk charge.

        Used for initial input placement (the input already exists on disk
        before the clock starts, matching the benchmark rules).
        """
        self._check_local(bid)
        if len(keys) > self.block_elems:
            raise ValueError(
                f"{len(keys)} keys exceed block capacity {self.block_elems}"
            )
        self._data[bid] = keys

    def _check_local(self, bid: BID) -> None:
        if bid.node != self.node.node_id:
            raise SimulationError(
                f"block {bid} does not live on node {self.node.node_id}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BlockStore n{self.node.node_id} in_use={self.blocks_in_use} "
            f"peak={self.peak_blocks}>"
        )


def remote_read(
    stores: List[BlockStore],
    fabric: Fabric,
    reader_node: int,
    bid: BID,
    tag: Optional[str] = None,
    active_nodes: int = 2,
) -> Generator:
    """Read a block that may live on another node.

    A generator (use with ``yield from``): first the owning disk services
    the read, then — if the block is remote — the fabric transfers it
    (RDMA-style one-sided access; the owner CPU is not involved, matching
    how the selection phase "requests data from remote disks").
    Returns the key array.
    """
    store = stores[bid.node]
    keys = yield store.read(bid, tag=tag)
    if bid.node != reader_node:
        nbytes = store.block_bytes
        fabric.record_traffic(nbytes, messages=1)
        yield fabric.sim.timeout(fabric.transfer_seconds(nbytes, active_nodes))
    return keys
