"""Sorted runs on disk: local pieces and distributed runs.

Run formation (paper Section IV, phase one) leaves each node with one
*local piece* of every global run: a sorted sequence of blocks on the
node's own disks, plus an in-memory sample of every K-th element and the
first key of every block (the *prediction sequence* entries of
Section III).  A :class:`DistributedRun` stitches the P pieces into one
globally sorted sequence with global-position indexing — the view the
multiway-selection phase operates on.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Generator, List, Optional, Tuple

import numpy as np

from ..records.arrays import is_sorted
from ..records.element import KEY_DTYPE
from .block import BID
from .blockmanager import BlockStore

__all__ = ["LocalRunPiece", "DistributedRun", "write_piece", "PieceReader"]


class LocalRunPiece:
    """One node's sorted, block-resident piece of a run."""

    def __init__(
        self,
        node: int,
        blocks: List[BID],
        counts: List[int],
        first_keys: np.ndarray,
        sample_keys: np.ndarray,
        sample_every: int,
    ):
        if len(blocks) != len(counts) or len(blocks) != len(first_keys):
            raise ValueError("blocks/counts/first_keys length mismatch")
        self.node = node
        self.blocks = blocks
        self.counts = counts
        self.first_keys = first_keys
        self.sample_keys = sample_keys
        self.sample_every = sample_every
        self.n_keys = sum(counts)
        # Prefix sums for position->block lookup.
        self._starts: List[int] = []
        acc = 0
        for c in counts:
            self._starts.append(acc)
            acc += c

    def block_of(self, pos: int) -> Tuple[int, int]:
        """Map a piece-local position to (block index, offset in block)."""
        if not 0 <= pos < self.n_keys:
            raise IndexError(f"position {pos} outside piece of {self.n_keys} keys")
        idx = bisect_right(self._starts, pos) - 1
        return idx, pos - self._starts[idx]

    def block_start(self, idx: int) -> int:
        """Piece-local position of the first key in block ``idx``."""
        return self._starts[idx]

    def free_all(self, store: BlockStore) -> None:
        """Release every block of the piece."""
        for bid in self.blocks:
            store.free(bid)
        self.blocks = []
        self.counts = []
        self.n_keys = 0
        self._starts = []

    def __len__(self) -> int:
        return self.n_keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalRunPiece n{self.node} keys={self.n_keys} blocks={len(self.blocks)}>"


class DistributedRun:
    """A globally sorted run: one :class:`LocalRunPiece` per node, in rank order."""

    def __init__(self, run_id: int, pieces: List[LocalRunPiece]):
        self.run_id = run_id
        self.pieces = pieces
        self.offsets: List[int] = []
        acc = 0
        for piece in pieces:
            self.offsets.append(acc)
            acc += piece.n_keys
        self.n_keys = acc

    def locate(self, gpos: int) -> Tuple[int, int]:
        """Map a run-global position to (node, piece-local position)."""
        if not 0 <= gpos < self.n_keys:
            raise IndexError(f"position {gpos} outside run of {self.n_keys} keys")
        node = bisect_right(self.offsets, gpos) - 1
        return node, gpos - self.offsets[node]

    def __len__(self) -> int:
        return self.n_keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DistributedRun {self.run_id} keys={self.n_keys} pieces={len(self.pieces)}>"


def write_piece(
    store: BlockStore,
    keys: np.ndarray,
    tag: str,
    sample_every: int,
    max_outstanding: Optional[int] = None,
    check_sorted: bool = False,
) -> Generator:
    """Write a sorted key array to local disks as a run piece.

    A generator (``yield from``): blocks are striped round-robin over the
    node's disks and written asynchronously with a bounded number of
    outstanding requests (the write-buffer blocks of the paper's
    Section III).  Returns the :class:`LocalRunPiece`, including the block
    first-key prediction entries and the every-K-th-element sample used by
    the scalable multiway selection (Appendix B).
    """
    if check_sorted and not is_sorted(keys):
        raise ValueError("write_piece expects sorted keys")
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    be = store.block_elems
    if max_outstanding is None:
        max_outstanding = 2 * len(store.node.disks)
    blocks: List[BID] = []
    counts: List[int] = []
    firsts: List[int] = []
    outstanding: List = []
    for start in range(0, len(keys), be):
        chunk = keys[start : start + be]
        bid = store.allocate()
        blocks.append(bid)
        counts.append(len(chunk))
        firsts.append(chunk[0])
        outstanding.append(store.write(bid, chunk, tag=tag))
        if len(outstanding) >= max_outstanding:
            yield outstanding.pop(0)
    for ev in outstanding:
        yield ev
    sample = keys[::sample_every].copy() if len(keys) else keys[:0]
    return LocalRunPiece(
        node=store.node.node_id,
        blocks=blocks,
        counts=counts,
        first_keys=np.asarray(firsts, dtype=KEY_DTYPE),
        sample_keys=sample,
        sample_every=sample_every,
    )


class PieceReader:
    """Sequential block reader with bounded read-ahead.

    Issues up to ``depth`` asynchronous block reads ahead of consumption —
    the simple streaming prefetch used for run formation input, where the
    access pattern is known and sequential per disk.
    """

    def __init__(
        self,
        store: BlockStore,
        blocks: List[BID],
        tag: str,
        depth: Optional[int] = None,
    ):
        self.store = store
        self.blocks = blocks
        self.tag = tag
        self.depth = depth if depth is not None else 2 * len(store.node.disks)
        if self.depth < 1:
            raise ValueError("read-ahead depth must be >= 1")
        self._next_issue = 0
        self._inflight: List = []

    def _fill(self) -> None:
        while self._next_issue < len(self.blocks) and len(self._inflight) < self.depth:
            bid = self.blocks[self._next_issue]
            self._inflight.append(self.store.read(bid, tag=self.tag))
            self._next_issue += 1

    def next_block(self) -> Generator:
        """Generator returning the next block's keys, or ``None`` at EOF."""
        self._fill()
        if not self._inflight:
            return None
        keys = yield self._inflight.pop(0)
        self._fill()
        return keys

    def read_all(self) -> Generator:
        """Generator returning the list of all block arrays, in order."""
        out = []
        while True:
            keys = yield from self.next_block()
            if keys is None:
                return out
            out.append(keys)
