"""LRU block cache.

The multiway selection of Section IV-A repeatedly probes positions inside
runs; consecutive probes of one splitter land in the same or neighbouring
blocks.  The paper's third optimization — "we cache the most recently
accessed disk blocks to eliminate the R log B last disk accesses" — is
this cache.  Hit/miss counters feed the selection-cost statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """A fixed-capacity least-recently-used map."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._items: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up ``key``; refreshes recency on hit, returns None on miss."""
        if key in self._items:
            self._items.move_to_end(key)
            self.hits += 1
            return self._items[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``; evicts the least recently used entry."""
        if self.capacity == 0:
            return
        if key in self._items:
            self._items.move_to_end(key)
        self._items[key] = value
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._items.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
