"""Streaming block writer with bounded outstanding requests.

Models the write-buffer blocks of the paper (Section III: "We maintain D
buffer blocks.  Whenever they are full, we output them to the disks in
parallel."): keys are appended to an in-memory buffer; every time a full
block accumulates it is written asynchronously, and the number of writes
in flight is bounded by the shared ``outstanding`` list the owning phase
generator drains.

:meth:`StreamBlockWriter.flush` writes a *partially filled* block — the
explicit I/O overhead the external all-to-all pays at sub-operation
boundaries (Section IV-C/IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

import numpy as np

from .block import BID
from .blockmanager import BlockStore

__all__ = ["SegmentBlock", "StreamBlockWriter"]


@dataclass
class SegmentBlock:
    """One on-disk block of a sorted stream: address, fill and minimum."""

    bid: BID
    count: int
    first_key: int


class StreamBlockWriter:
    """Accumulate sorted keys and write them out block by block."""

    def __init__(self, store: BlockStore, tag: str, outstanding: List, max_outstanding: int):
        if max_outstanding < 1:
            raise ValueError("need at least one outstanding write slot")
        self.store = store
        self.tag = tag
        self.outstanding = outstanding
        self.max_outstanding = max_outstanding
        self._pending: List[np.ndarray] = []
        self._pending_count = 0
        self.blocks: List[SegmentBlock] = []
        self.partial_blocks = 0
        self.keys_written = 0

    def add(self, keys: np.ndarray) -> Generator:
        """Append ``keys``, emitting full blocks (use with ``yield from``)."""
        if len(keys) == 0:
            return
        self._pending.append(keys)
        self._pending_count += len(keys)
        while self._pending_count >= self.store.block_elems:
            yield from self._emit(self.store.block_elems)

    def flush(self) -> Generator:
        """Write any remainder as a partially filled block."""
        if self._pending_count > 0:
            self.partial_blocks += 1
            yield from self._emit(self._pending_count)

    def drain(self) -> Generator:
        """Wait for every outstanding write this writer may share."""
        while self.outstanding:
            yield self.outstanding.pop(0)

    def _emit(self, n: int) -> Generator:
        data = (
            np.concatenate(self._pending)
            if len(self._pending) > 1
            else self._pending[0]
        )
        chunk, rest = data[:n], data[n:]
        self._pending = [rest] if len(rest) else []
        self._pending_count = len(rest)
        bid = self.store.allocate()
        self.blocks.append(SegmentBlock(bid, len(chunk), int(chunk[0])))
        self.keys_written += len(chunk)
        self.outstanding.append(self.store.write(bid, chunk, tag=self.tag))
        if len(self.outstanding) > self.max_outstanding:
            yield self.outstanding.pop(0)
