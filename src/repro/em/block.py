"""Block identifiers.

External memory is organized in fixed-size blocks (the paper's ``B``,
8 MiB by default).  A :class:`BID` names one block slot: the node it lives
on, the disk within that node, and the slot index on that disk.  Slot
indices translate to byte offsets for the disk model's seek decisions.

A simulated block *represents* a full paper-scale block: it carries
``block_elems`` real keys but is charged ``block_bytes`` of I/O (see
DESIGN.md, "Scaling discipline").
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["BID"]


class BID(NamedTuple):
    """Globally unique block address: (node, disk, slot)."""

    node: int
    disk: int
    slot: int

    def offset_bytes(self, block_bytes: float) -> float:
        """Byte offset of this slot on its disk."""
        return self.slot * block_bytes

    def __str__(self) -> str:
        return f"b{self.node}.{self.disk}.{self.slot}"
