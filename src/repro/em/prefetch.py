"""Prediction-sequence prefetching (paper Section III and Appendix A).

During merging, the order in which data blocks are needed is known in
advance: sort the blocks by their smallest key (the *prediction
sequence*).  The open question the paper discusses is in which order to
*fetch* them so that, with ``W`` prefetch-buffer blocks over ``D`` disks,
all disks stay busy.  Appendix A (following Hutchinson, Sanders and
Vitter's duality result) derives the optimal schedule by simulating a
*buffered writing* process on the reversed sequence:

* process the reversed prediction sequence, admitting blocks into a
  write buffer of capacity ``W`` (one FIFO queue per disk);
* in every output step, each disk with a nonempty queue writes one block;
* reversing the resulting output steps yields the fetch schedule.

The schedule guarantees that consuming one block per step in prediction
order never stalls, while at most one fetch per disk per step is issued.
:func:`naive_schedule` (fetch in plain prediction order) is kept as the
ablation baseline — it is only known to be optimal given
``Ω(D log D)`` buffers.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "prediction_order",
    "optimal_prefetch_schedule",
    "naive_schedule",
    "schedule_is_valid",
    "schedule_steps",
]


def prediction_order(first_keys: Sequence[Tuple[int, int, int]]) -> List[int]:
    """Order block indices by (smallest key, run, block-in-run).

    ``first_keys[i]`` is a ``(key, run, index_in_run)`` triple for block
    ``i``; the returned permutation lists block indices in the order the
    merge will need them.
    """
    return sorted(range(len(first_keys)), key=lambda i: first_keys[i])


def naive_schedule(n_blocks: int) -> List[int]:
    """Fetch blocks simply in prediction order (ablation baseline)."""
    return list(range(n_blocks))


def optimal_prefetch_schedule(
    disk_ids: Sequence[int],
    n_buffers: int,
    n_disks: int,
) -> List[int]:
    """Optimal fetch order via the buffered-writing duality.

    ``disk_ids[i]`` is the disk of the block at prediction position ``i``.
    Returns a permutation of ``range(len(disk_ids))``: the positions in
    the order they should be fetched.  Requires ``n_buffers >= 1``.
    """
    n = len(disk_ids)
    if n_buffers < 1:
        raise ValueError(f"need at least one prefetch buffer, got {n_buffers}")
    if n == 0:
        return []
    if n_disks < 1:
        raise ValueError(f"need at least one disk, got {n_disks}")
    for d in disk_ids:
        if not 0 <= d < n_disks:
            raise ValueError(f"disk id {d} outside 0..{n_disks - 1}")

    # Simulate buffered writing of the reversed sequence.
    queues: List[deque] = [deque() for _ in range(n_disks)]
    out_step = [0] * n  # step at which (reversed) position i is written
    in_buffer = 0
    admitted = 0
    step = 0
    reversed_ids = list(reversed(disk_ids))
    while admitted < n or in_buffer > 0:
        while in_buffer < n_buffers and admitted < n:
            queues[reversed_ids[admitted]].append(admitted)
            admitted += 1
            in_buffer += 1
        wrote = False
        for q in queues:
            if q:
                out_step[q.popleft()] = step
                in_buffer -= 1
                wrote = True
        if not wrote:  # pragma: no cover - cannot happen while blocks remain
            raise AssertionError("buffered-writing simulation stalled")
        step += 1
    total_steps = step

    # Dual: fetch step of prediction position p is total-1 - out_step of
    # its reversed twin; stable sort by fetch step keeps prediction order
    # within a step.
    fetch_step = [total_steps - 1 - out_step[n - 1 - p] for p in range(n)]
    return sorted(range(n), key=lambda p: (fetch_step[p], p))


def schedule_is_valid(
    schedule: Sequence[int],
    disk_ids: Sequence[int],
    n_buffers: int,
    n_disks: int,
) -> bool:
    """Deadlock-freedom of a fetch schedule under a bounded buffer pool.

    Models the merge phase's execution: blocks are fetched in schedule
    order, each occupying one of ``n_buffers`` pool slots until consumed;
    the consumer drains eagerly in prediction order.  The schedule is
    valid iff the pool never fills while the next prediction-order block
    is still unfetched (which would deadlock fetcher and merger).
    """
    n = len(disk_ids)
    if sorted(schedule) != list(range(n)):
        return False
    buffered: set = set()
    consumed = 0
    for pos in schedule:
        if len(buffered) >= n_buffers:
            return False  # pool full, next needed block not fetchable
        buffered.add(pos)
        while consumed < n and consumed in buffered:
            buffered.discard(consumed)
            consumed += 1
    return consumed == n and not buffered


def schedule_steps(
    schedule: Sequence[int],
    disk_ids: Sequence[int],
    n_buffers: int,
    n_disks: int,
) -> Optional[int]:
    """Lock-step I/O steps to consume everything under a schedule.

    In each step every disk may fetch one block (the earliest unfetched
    schedule entry on that disk for which a buffer slot is free); the
    consumer drains eagerly in prediction order.  Returns the number of
    steps, or None when the schedule deadlocks.  This is the metric the
    optimal schedule of Appendix A minimizes; fetching in plain prediction
    order needs more steps whenever one disk's blocks cluster early in the
    sequence.
    """
    n = len(disk_ids)
    if sorted(schedule) != list(range(n)):
        return None

    queues: List[deque] = [deque() for _ in range(n_disks)]
    in_flight = 0
    buffered: set = set()
    consumed = 0
    cursor = 0  # next schedule entry to issue (strictly in order)
    steps = 0

    def drain():
        nonlocal consumed
        while consumed < n and consumed in buffered:
            buffered.discard(consumed)
            consumed += 1

    def issue():
        nonlocal cursor, in_flight
        while cursor < n and in_flight + len(buffered) < n_buffers:
            pos = schedule[cursor]
            queues[disk_ids[pos]].append(pos)
            in_flight += 1
            cursor += 1

    issue()
    while consumed < n:
        steps += 1
        arrived = False
        for q in queues:
            if q:
                buffered.add(q.popleft())
                in_flight -= 1
                arrived = True
        drain()
        issue()
        if not arrived:
            return None  # pool full of blocks the merge cannot consume yet
    return steps
