"""External-memory context: one block store per cluster node."""

from __future__ import annotations

from typing import Generator, List, Optional

from ..cluster.cluster import Cluster
from .block import BID
from .blockmanager import BlockStore, remote_read

__all__ = ["ExternalMemory"]


class ExternalMemory:
    """Binds a cluster to per-node block stores of a common block format."""

    def __init__(self, cluster: Cluster, block_bytes: float, block_elems: int):
        self.cluster = cluster
        self.block_bytes = float(block_bytes)
        self.block_elems = int(block_elems)
        self.stores: List[BlockStore] = [
            BlockStore(node, block_bytes, block_elems) for node in cluster.nodes
        ]

    def store(self, node: int) -> BlockStore:
        """The block store of ``node``."""
        return self.stores[node]

    def read_block(
        self,
        reader_node: int,
        bid: BID,
        tag: Optional[str] = None,
        active_nodes: int = 2,
    ) -> Generator:
        """Read a possibly-remote block (``yield from``); returns its keys."""
        return remote_read(
            self.stores,
            self.cluster.fabric,
            reader_node,
            bid,
            tag=tag,
            active_nodes=active_nodes,
        )

    @property
    def total_blocks_in_use(self) -> int:
        return sum(s.blocks_in_use for s in self.stores)

    def peak_blocks(self, node: int) -> int:
        """High-water block usage of ``node`` (for in-place accounting)."""
        return self.stores[node].peak_blocks
