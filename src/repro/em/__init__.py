"""External-memory substrate: blocks, stores, runs, prefetching, caching."""

from .block import BID
from .blockmanager import BlockStore, remote_read
from .cache import LRUCache
from .context import ExternalMemory
from .file import DistributedRun, LocalRunPiece, PieceReader, write_piece
from .prefetch import (
    naive_schedule,
    optimal_prefetch_schedule,
    prediction_order,
    schedule_is_valid,
    schedule_steps,
)

__all__ = [
    "BID",
    "BlockStore",
    "remote_read",
    "LRUCache",
    "ExternalMemory",
    "DistributedRun",
    "LocalRunPiece",
    "PieceReader",
    "write_piece",
    "naive_schedule",
    "optimal_prefetch_schedule",
    "prediction_order",
    "schedule_is_valid",
    "schedule_steps",
]
